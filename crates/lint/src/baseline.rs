//! The ratchet baseline: frozen per-`(file, rule)` violation *counts*.
//!
//! Counts — not line numbers — so unrelated edits that shift code around
//! do not churn the baseline. The ratchet only moves one way: a count
//! above its baselined value fails CI; a count below it is an
//! improvement the tool asks you to lock in with `--update-baseline`.

use crate::rules::Finding;
use smash_support::json::{self, Json};
use std::collections::BTreeMap;

/// Violation counts keyed by path, then rule name. `BTreeMap` keeps the
/// serialized form byte-deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `path -> rule name -> frozen violation count`.
    pub entries: BTreeMap<String, BTreeMap<String, u64>>,
}

/// The outcome of checking current findings against a baseline.
#[derive(Debug, Clone, Default)]
pub struct BaselineDiff {
    /// `(path, rule, current, allowed)` for every count over budget.
    pub regressed: Vec<(String, String, u64, u64)>,
    /// `(path, rule, current, allowed)` for every count under budget.
    pub improved: Vec<(String, String, u64, u64)>,
}

impl BaselineDiff {
    /// Total violations beyond the ratchet (`Σ max(0, current − allowed)`).
    pub fn new_violations(&self) -> u64 {
        self.regressed
            .iter()
            .map(|(_, _, now, allowed)| now.saturating_sub(*allowed))
            .sum()
    }
}

impl Baseline {
    /// Builds a baseline that freezes exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for f in findings {
            *entries
                .entry(f.path.clone())
                .or_default()
                .entry(f.rule.name().to_owned())
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Parses a baseline from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON is malformed or the wrong shape.
    pub fn from_json_str(s: &str) -> Result<Baseline, String> {
        let v = json::parse(s).map_err(|e| format!("invalid baseline JSON: {e}"))?;
        let files = v
            .get("files")
            .and_then(Json::as_obj)
            .ok_or("baseline missing `files` object")?;
        let mut entries: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for (path, rules) in files {
            let rules = rules
                .as_obj()
                .ok_or_else(|| format!("baseline entry for `{path}` is not an object"))?;
            let mut per_rule = BTreeMap::new();
            for (rule, count) in rules {
                let n = match count {
                    Json::UInt(n) => *n,
                    Json::Int(n) if *n >= 0 => *n as u64,
                    _ => return Err(format!("baseline count for `{path}`/`{rule}` not a count")),
                };
                per_rule.insert(rule.clone(), n);
            }
            entries.insert(path.clone(), per_rule);
        }
        Ok(Baseline { entries })
    }

    /// Serializes the baseline (pretty, trailing newline, deterministic).
    pub fn to_json_string(&self) -> String {
        let files: Vec<(String, Json)> = self
            .entries
            .iter()
            .filter(|(_, rules)| !rules.is_empty())
            .map(|(path, rules)| {
                let obj = rules
                    .iter()
                    .map(|(r, n)| (r.clone(), Json::UInt(*n)))
                    .collect();
                (path.clone(), Json::Obj(obj))
            })
            .collect();
        let doc = Json::Obj(vec![
            (
                "comment".to_owned(),
                Json::Str(
                    "Frozen lint debt; counts may only shrink. Regenerate with \
                     `smash-lint --update-baseline`."
                        .to_owned(),
                ),
            ),
            ("files".to_owned(), Json::Obj(files)),
        ]);
        let mut s = json::to_string_pretty(&doc);
        s.push('\n');
        s
    }

    /// Compares current findings against the frozen counts.
    pub fn diff(&self, findings: &[Finding]) -> BaselineDiff {
        let current = Baseline::from_findings(findings);
        let mut diff = BaselineDiff::default();
        // Over-budget: walk current counts against the frozen ones.
        for (path, rules) in &current.entries {
            for (rule, &now) in rules {
                let allowed = self
                    .entries
                    .get(path)
                    .and_then(|r| r.get(rule))
                    .copied()
                    .unwrap_or(0);
                if now > allowed {
                    diff.regressed
                        .push((path.clone(), rule.clone(), now, allowed));
                }
            }
        }
        // Under-budget: frozen counts no longer fully used.
        for (path, rules) in &self.entries {
            for (rule, &allowed) in rules {
                let now = current
                    .entries
                    .get(path)
                    .and_then(|r| r.get(rule))
                    .copied()
                    .unwrap_or(0);
                if now < allowed {
                    diff.improved
                        .push((path.clone(), rule.clone(), now, allowed));
                }
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn finding(path: &str, rule: RuleId) -> Finding {
        Finding {
            path: path.to_owned(),
            line: 1,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip() {
        let b = Baseline::from_findings(&[
            finding("a.rs", RuleId::Panic),
            finding("a.rs", RuleId::Panic),
            finding("b.rs", RuleId::Index),
        ]);
        let s = b.to_json_string();
        let back = Baseline::from_json_str(&s).expect("roundtrip baseline parses");
        assert_eq!(b, back);
        assert_eq!(back.entries["a.rs"]["panic"], 2);
    }

    #[test]
    fn ratchet_direction() {
        let frozen = Baseline::from_findings(&[
            finding("a.rs", RuleId::Panic),
            finding("a.rs", RuleId::Panic),
        ]);
        // One fixed: improvement, no regression.
        let d = frozen.diff(&[finding("a.rs", RuleId::Panic)]);
        assert!(d.regressed.is_empty());
        assert_eq!(d.improved, vec![("a.rs".into(), "panic".into(), 1, 2)]);
        assert_eq!(d.new_violations(), 0);
        // One added: regression of exactly one.
        let d = frozen.diff(&[
            finding("a.rs", RuleId::Panic),
            finding("a.rs", RuleId::Panic),
            finding("a.rs", RuleId::Panic),
        ]);
        assert_eq!(d.new_violations(), 1);
        // A new file is entirely over budget.
        let d = frozen.diff(&[finding("new.rs", RuleId::Docs)]);
        assert_eq!(d.new_violations(), 1);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::from_json_str("{").is_err());
        assert!(Baseline::from_json_str("{}").is_err());
        assert!(Baseline::from_json_str(r#"{"files": {"a.rs": {"panic": -2}}}"#).is_err());
    }
}
