//! The `smash-lint` command line: argument parsing, output formatting,
//! and exit-code policy.
//!
//! Exit codes: `0` clean (or only baselined debt), `1` new violations
//! or a runtime error, `2` usage error. [`run_cli`] takes explicit
//! output sinks so the self-test can drive the full CLI in-process.

use crate::baseline::Baseline;
use crate::rules::{lint_files, Finding, LintConfig, RuleId};
use crate::walk::collect_sources;
use smash_support::json::Json;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Usage text for `--help`.
pub const HELP: &str = "\
smash-lint: in-tree invariant linter for the SMASH workspace

USAGE:
    smash-lint [ROOT] [OPTIONS]

ARGS:
    ROOT                  directory to lint (default: .)

OPTIONS:
    --check-baseline      fail (exit 1) only on violations beyond the
                          committed baseline (the CI gate)
    --update-baseline     rewrite the baseline to freeze current findings
    --baseline <PATH>     baseline file (default: <ROOT>/lint-baseline.json)
    --no-baseline         ignore any baseline; report every finding
    --rule <RULE>         run only this rule (repeatable)
    --skip-rule <RULE>    disable this rule (repeatable)
    --json                machine-readable output
    --list-rules          print the rule catalog and exit
    --help                print this help and exit

Suppress a single finding in place with
    // lint:allow(<rule>): <reason>
on the offending line or the line above. The reason is mandatory.
See DESIGN.md §8 for the rule catalog and ratchet semantics.
";

/// Parsed command line.
#[derive(Debug, Default)]
struct Args {
    root: Option<PathBuf>,
    check_baseline: bool,
    update_baseline: bool,
    baseline_path: Option<PathBuf>,
    no_baseline: bool,
    json: bool,
    list_rules: bool,
    help: bool,
    only: Vec<RuleId>,
    skip: Vec<RuleId>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check-baseline" => args.check_baseline = true,
            "--update-baseline" => args.update_baseline = true,
            "--no-baseline" => args.no_baseline = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => args.help = true,
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a path")?;
                args.baseline_path = Some(PathBuf::from(v));
            }
            "--rule" | "--skip-rule" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("{a} requires a rule name"))?;
                let rule = RuleId::parse(v)
                    .ok_or_else(|| format!("unknown rule `{v}` (see --list-rules)"))?;
                if a == "--rule" {
                    args.only.push(rule);
                } else {
                    args.skip.push(rule);
                }
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            root => {
                if args.root.is_some() {
                    return Err(format!("unexpected extra argument `{root}`"));
                }
                args.root = Some(PathBuf::from(root));
            }
        }
    }
    if args.check_baseline && args.update_baseline {
        return Err("--check-baseline and --update-baseline are mutually exclusive".into());
    }
    Ok(args)
}

/// Runs the CLI against `argv` (program name excluded), writing to the
/// given sinks. Returns the process exit code.
pub fn run_cli(argv: &[String], out: &mut dyn std::io::Write, err: &mut dyn std::io::Write) -> i32 {
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            let _ = writeln!(err, "error: {e}\n\n{HELP}");
            return 2;
        }
    };
    if args.help {
        let _ = write!(out, "{HELP}");
        return 0;
    }
    if args.list_rules {
        for r in RuleId::ALL {
            let _ = writeln!(out, "{:<14} {}", r.name(), r.description());
        }
        return 0;
    }

    let mut cfg = LintConfig::default();
    if !args.only.is_empty() {
        cfg.enabled = args.only.clone();
    }
    cfg.enabled.retain(|r| !args.skip.contains(r));

    let root = args.root.clone().unwrap_or_else(|| PathBuf::from("."));
    let files = match collect_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            let _ = writeln!(err, "error: cannot read `{}`: {e}", root.display());
            return 1;
        }
    };
    let findings = lint_files(&files, &cfg);

    let baseline_path = args
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));

    if args.update_baseline {
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&baseline_path, baseline.to_json_string()) {
            let _ = writeln!(
                err,
                "error: cannot write `{}`: {e}",
                baseline_path.display()
            );
            return 1;
        }
        let _ = writeln!(
            out,
            "baseline updated: {} findings frozen in {}",
            findings.len(),
            baseline_path.display()
        );
        return 0;
    }

    let baseline = if args.no_baseline {
        Baseline::default()
    } else {
        match load_baseline(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                let _ = writeln!(err, "error: {e}");
                return 1;
            }
        }
    };
    let diff = baseline.diff(&findings);
    let new = diff.new_violations();

    if args.json {
        let _ = writeln!(out, "{}", render_json(&findings, &baseline, new));
    } else {
        // The CI gate only cares about regressions; a full debt listing
        // there would drown the signal in hundreds of frozen lines.
        let show_baselined = !args.check_baseline;
        let _ = write!(
            out,
            "{}",
            render_table(&findings, &baseline, &diff, show_baselined)
        );
    }
    if new > 0 {
        let _ = writeln!(
            err,
            "smash-lint: {new} new violation(s) beyond the baseline \
             (fix them, add `lint:allow` with a reason, or run --update-baseline)"
        );
        return 1;
    }
    if !diff.improved.is_empty() && !args.json {
        let _ = writeln!(
            out,
            "note: {} baselined count(s) improved — lock it in with --update-baseline",
            diff.improved.len()
        );
    }
    0
}

/// A missing baseline file is an empty baseline (fresh trees start with
/// zero frozen debt), a malformed one is an error.
fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(s) => Baseline::from_json_str(&s).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("cannot read `{}`: {e}", path.display())),
    }
}

/// Findings over the baseline budget for a given (path, rule) are
/// rendered as NEW; the rest as baselined debt.
fn render_table(
    findings: &[Finding],
    baseline: &Baseline,
    diff: &crate::baseline::BaselineDiff,
    show_baselined: bool,
) -> String {
    let mut out = String::new();
    if findings.is_empty() {
        let _ = writeln!(out, "smash-lint: clean ({} rules)", RuleId::ALL.len());
        return out;
    }
    // Mark the LAST `over` findings of each over-budget (path, rule)
    // group as NEW — earlier lines fill the frozen budget first.
    let mut budget: std::collections::BTreeMap<(String, String), u64> =
        std::collections::BTreeMap::new();
    for (path, rules) in &baseline.entries {
        for (rule, &n) in rules {
            budget.insert((path.clone(), rule.clone()), n);
        }
    }
    let mut new_total = 0u64;
    let mut baselined_total = 0u64;
    for f in findings {
        let key = (f.path.clone(), f.rule.name().to_owned());
        let left = budget.entry(key).or_insert(0);
        let tag = if *left > 0 {
            *left -= 1;
            baselined_total += 1;
            if !show_baselined {
                continue;
            }
            "baselined"
        } else {
            new_total += 1;
            "NEW"
        };
        let _ = writeln!(
            out,
            "{:<9} {}:{} [{}] {}",
            tag,
            f.path,
            f.line,
            f.rule.name(),
            f.message
        );
    }
    let _ = writeln!(
        out,
        "smash-lint: {} finding(s): {} new, {} baselined{}",
        findings.len(),
        new_total,
        baselined_total,
        if diff.improved.is_empty() {
            String::new()
        } else {
            format!(", {} improved", diff.improved.len())
        }
    );
    out
}

fn render_json(findings: &[Finding], baseline: &Baseline, new: u64) -> String {
    let arr: Vec<Json> = findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("path".to_owned(), Json::Str(f.path.clone())),
                ("line".to_owned(), Json::UInt(f.line as u64)),
                ("rule".to_owned(), Json::Str(f.rule.name().to_owned())),
                ("message".to_owned(), Json::Str(f.message.clone())),
            ])
        })
        .collect();
    let baselined: u64 = baseline.entries.values().flat_map(|r| r.values()).sum();
    let doc = Json::Obj(vec![
        ("total".to_owned(), Json::UInt(findings.len() as u64)),
        ("new".to_owned(), Json::UInt(new)),
        ("baseline_budget".to_owned(), Json::UInt(baselined)),
        ("findings".to_owned(), Json::Arr(arr)),
    ]);
    smash_support::json::to_string_pretty(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> (i32, String, String) {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run_cli(&argv, &mut out, &mut err);
        (
            code,
            String::from_utf8(out).expect("stdout is UTF-8"),
            String::from_utf8(err).expect("stderr is UTF-8"),
        )
    }

    #[test]
    fn help_exits_zero_on_stdout() {
        let (code, out, err) = run(&["--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        assert!(err.is_empty());
    }

    #[test]
    fn unknown_flag_exits_two_on_stderr() {
        let (code, out, err) = run(&["--frobnicate"]);
        assert_eq!(code, 2);
        assert!(out.is_empty());
        assert!(err.contains("unknown flag"));
        assert!(
            err.contains("USAGE"),
            "usage goes to stderr on usage errors"
        );
    }

    #[test]
    fn unknown_rule_exits_two() {
        let (code, _, err) = run(&["--rule", "no-such-rule"]);
        assert_eq!(code, 2);
        assert!(err.contains("unknown rule"));
    }

    #[test]
    fn list_rules_names_all() {
        let (code, out, _) = run(&["--list-rules"]);
        assert_eq!(code, 0);
        for r in RuleId::ALL {
            assert!(out.contains(r.name()), "missing {}", r.name());
        }
    }

    #[test]
    fn conflicting_baseline_modes_rejected() {
        let (code, _, err) = run(&["--check-baseline", "--update-baseline"]);
        assert_eq!(code, 2);
        assert!(err.contains("mutually exclusive"));
    }
}
