//! Deterministic source-tree walker.
//!
//! Collects every `.rs` file under a root, in sorted order, with
//! `/`-separated paths relative to that root — so findings and the
//! baseline are byte-identical across platforms and filesystems.

use crate::rules::SourceFile;
use std::fs;
use std::io;
use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "results"];

/// Collects all `.rs` sources under `root`, sorted by relative path.
///
/// `fixtures` directories are skipped unless the walk root itself is one
/// (so linting the workspace ignores the lint fixtures, while the
/// self-test can lint them directly).
///
/// # Errors
///
/// Propagates I/O errors from reading the tree.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let skip_fixtures = !root
        .components()
        .any(|c| c.as_os_str().to_str() == Some("fixtures"));
    let mut out = Vec::new();
    descend(root, root, skip_fixtures, &mut out)?;
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn descend(
    root: &Path,
    dir: &Path,
    skip_fixtures: bool,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_str().unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || (skip_fixtures && name == "fixtures") {
                continue;
            }
            descend(root, &path, skip_fixtures, out)?;
        } else if name.ends_with(".rs") {
            let content = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .filter_map(|c| c.as_os_str().to_str())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile { path: rel, content });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_own_crate_sorted_without_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = collect_sources(root).expect("walk the lint crate source tree");
        let paths: Vec<&str> = files.iter().map(|f| f.path.as_str()).collect();
        assert!(paths.contains(&"src/walk.rs"));
        assert!(paths.iter().all(|p| !p.contains("fixtures/")));
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted, "deterministic order");
    }

    #[test]
    fn fixture_root_is_not_skipped() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        if root.is_dir() {
            let files = collect_sources(&root).expect("walk the fixtures tree");
            assert!(
                !files.is_empty(),
                "fixtures are visible when walked directly"
            );
        }
    }
}
