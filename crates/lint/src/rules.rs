//! The rule engine: every invariant the linter enforces, plus the
//! in-place suppression (`lint:allow`) machinery.
//!
//! Rules match token shapes on the lexed code channel (comments and
//! literal contents already blanked — see [`crate::lexer`]), so a
//! `panic!` inside a string or a doc example never fires. Each rule is
//! individually toggleable; the catalog and the rationale for every
//! rule live in DESIGN.md §8.

use crate::lexer::{lex, LexedFile};
use std::collections::BTreeMap;

/// The rule catalog. `ALL` and `name()` are the single source of truth
/// for CLI parsing and baseline keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Panic-freedom: no `unwrap()`/bare `expect`/`panic!`-family macro
    /// in non-test library code.
    Panic,
    /// Slice/collection indexing (`x[i]`) that can panic; prefer `.get`.
    Index,
    /// Iterating a `HashMap`/`HashSet` without an ordering step —
    /// nondeterministic order reaching reports breaks byte-determinism.
    HashIter,
    /// Wall-clock reads (`Instant::now`/`SystemTime`) outside the
    /// metrics layer.
    Wallclock,
    /// Every dimension builder runs under `instrumented_builder`
    /// (failpoint site + duration span + funnel counters).
    DimCoverage,
    /// Every public item in `crates/core` / `crates/graph` carries a doc
    /// comment.
    Docs,
    /// `lint:allow` suppressions must name a known rule and a reason.
    AllowReason,
}

impl RuleId {
    /// Every rule, in display/baseline order.
    pub const ALL: [RuleId; 7] = [
        RuleId::Panic,
        RuleId::Index,
        RuleId::HashIter,
        RuleId::Wallclock,
        RuleId::DimCoverage,
        RuleId::Docs,
        RuleId::AllowReason,
    ];

    /// The stable name used in baselines, CLI flags, and `lint:allow`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::Panic => "panic",
            RuleId::Index => "index",
            RuleId::HashIter => "hash-iter",
            RuleId::Wallclock => "wallclock",
            RuleId::DimCoverage => "dim-coverage",
            RuleId::Docs => "docs",
            RuleId::AllowReason => "allow-reason",
        }
    }

    /// Parses a rule name (the inverse of [`name`](Self::name)).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == s)
    }

    /// One-line description for `--list-rules`.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::Panic => {
                "no unwrap()/bare expect/panic!-family macros in non-test library code"
            }
            RuleId::Index => "slice/map indexing can panic; use .get() or document the invariant",
            RuleId::HashIter => {
                "HashMap/HashSet iteration without a sort is nondeterministic order"
            }
            RuleId::Wallclock => {
                "Instant::now/SystemTime outside smash-support::metrics breaks reproducibility"
            }
            RuleId::DimCoverage => {
                "every dimension builder runs under instrumented_builder (failpoint+span+funnel)"
            }
            RuleId::Docs => "every public item in crates/core and crates/graph has a doc comment",
            RuleId::AllowReason => "lint:allow must name a known rule and give a reason",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable description of the specific violation.
    pub message: String,
}

/// Which rules to run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Enabled rules (default: all).
    pub enabled: Vec<RuleId>,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            enabled: RuleId::ALL.to_vec(),
        }
    }
}

impl LintConfig {
    fn on(&self, r: RuleId) -> bool {
        self.enabled.contains(&r)
    }
}

/// A source file handed to the engine (path relative to the lint root).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// `/`-separated path, used for role/scope decisions and reporting.
    pub path: String,
    /// Full file contents.
    pub content: String,
}

/// How a file participates in linting, decided from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Shipped library/binary code: all rules apply.
    Library,
    /// Test/bench/example harness code: only structural rules
    /// (dim-coverage, allow-reason) apply.
    Harness,
}

fn role_of(path: &str) -> Role {
    let harness = path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
    if harness {
        Role::Harness
    } else {
        Role::Library
    }
}

/// The minimum `expect("…")` message length that counts as a documented
/// invariant (shorter messages are no better than `unwrap()`).
pub const MIN_EXPECT_MESSAGE: usize = 8;

/// Lints one file. Findings are sorted by line, suppressions already
/// applied.
pub fn lint_file(file: &SourceFile, cfg: &LintConfig) -> Vec<Finding> {
    let lexed = lex(&file.content);
    let raw_lines: Vec<&str> = file.content.lines().collect();
    let role = role_of(&file.path);
    let mut findings: Vec<Finding> = Vec::new();

    // Suppressions first: also yields allow-reason findings.
    let allows = collect_allows(file, &lexed, cfg, &mut findings);

    if role == Role::Library {
        if cfg.on(RuleId::Panic) {
            rule_panic(file, &lexed, &raw_lines, &mut findings);
        }
        if cfg.on(RuleId::Index) {
            rule_index(file, &lexed, &mut findings);
        }
        if cfg.on(RuleId::HashIter) {
            rule_hash_iter(file, &lexed, &mut findings);
        }
        if cfg.on(RuleId::Wallclock) {
            rule_wallclock(file, &lexed, &mut findings);
        }
        if cfg.on(RuleId::Docs) {
            rule_docs(file, &lexed, &raw_lines, &mut findings);
        }
    }
    if cfg.on(RuleId::DimCoverage) {
        rule_dim_coverage(file, &lexed, &mut findings);
    }

    findings.retain(|f| {
        if f.rule == RuleId::AllowReason {
            return true;
        }
        let here = allows.get(&f.line).is_some_and(|rs| rs.contains(&f.rule));
        let above = f.line > 1
            && allows
                .get(&(f.line - 1))
                .is_some_and(|rs| rs.contains(&f.rule));
        !(here || above)
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Lints many files; findings sorted by (path, line, rule).
pub fn lint_files(files: &[SourceFile], cfg: &LintConfig) -> Vec<Finding> {
    let mut out: Vec<Finding> = files.iter().flat_map(|f| lint_file(f, cfg)).collect();
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Parses `lint:allow(rule[,rule…]): reason` comments. Valid allows are
/// returned keyed by line; malformed ones become `allow-reason`
/// findings.
fn collect_allows(
    file: &SourceFile,
    lexed: &LexedFile,
    cfg: &LintConfig,
    findings: &mut Vec<Finding>,
) -> BTreeMap<usize, Vec<RuleId>> {
    let mut allows: BTreeMap<usize, Vec<RuleId>> = BTreeMap::new();
    for (idx, line) in lexed.lines.iter().enumerate() {
        let lineno = idx + 1;
        // Directives live in plain `//` comments; doc comments merely
        // talk about the directive syntax.
        let c = line.comment.trim_start();
        if c.starts_with("///")
            || c.starts_with("//!")
            || c.starts_with("/**")
            || c.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = line.comment.find("lint:allow") else {
            continue;
        };
        let mut bad = |msg: String| {
            if cfg.on(RuleId::AllowReason) {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: lineno,
                    rule: RuleId::AllowReason,
                    message: msg,
                });
            }
        };
        let rest = &line.comment[pos + "lint:allow".len()..];
        let Some(open) = rest.strip_prefix('(') else {
            bad("malformed lint:allow: expected `lint:allow(<rule>): <reason>`".to_owned());
            continue;
        };
        let Some(close) = open.find(')') else {
            bad("malformed lint:allow: missing `)`".to_owned());
            continue;
        };
        let (names, after) = (&open[..close], &open[close + 1..]);
        let mut rules: Vec<RuleId> = Vec::new();
        let mut ok = true;
        for name in names.split(',').map(str::trim) {
            match RuleId::parse(name) {
                Some(r) => rules.push(r),
                None => {
                    bad(format!("lint:allow names unknown rule `{name}`"));
                    ok = false;
                }
            }
        }
        if !ok {
            continue;
        }
        let Some(reason) = after.trim_start().strip_prefix(':') else {
            bad("lint:allow without a reason: write `lint:allow(<rule>): <reason>`".to_owned());
            continue;
        };
        if reason.trim().is_empty() {
            bad("lint:allow with an empty reason".to_owned());
            continue;
        }
        allows.entry(lineno).or_default().extend(rules);
    }
    allows
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `needle` in `hay` at positions where it is not preceded by an
/// identifier char (word-boundary on the left).
fn find_token(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(p) = hay[start..].find(needle) {
        let at = start + p;
        let bounded = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| is_ident_char(c) || c == ':');
        if bounded {
            out.push(at);
        }
        start = at + needle.len().max(1);
    }
    out
}

/// Rule `panic`: `.unwrap()`, `panic!`-family macros, and `.expect(`
/// whose message is not a string literal of at least
/// [`MIN_EXPECT_MESSAGE`] chars (a documented invariant).
fn rule_panic(file: &SourceFile, lexed: &LexedFile, raw: &[&str], findings: &mut Vec<Finding>) {
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let lineno = idx + 1;
        let mut push = |msg: String| {
            findings.push(Finding {
                path: file.path.clone(),
                line: lineno,
                rule: RuleId::Panic,
                message: msg,
            });
        };
        for _ in code.matches(".unwrap()") {
            push("`.unwrap()` can panic; use `.expect(\"<invariant>\")` or propagate".to_owned());
        }
        for mac in ["panic!", "unimplemented!", "todo!", "unreachable!"] {
            for _ in find_token(code, mac) {
                push(format!("`{mac}` is reachable from library code"));
            }
        }
        for at in code
            .match_indices(".expect(")
            .map(|(p, _)| p)
            .collect::<Vec<_>>()
        {
            let after = &code[at + ".expect(".len()..];
            let trimmed = after.trim_start();
            // Message may sit on the next line after rustfmt wrapping.
            let (msg_code, msg_raw) = if trimmed.is_empty() {
                let next = lexed.lines.get(idx + 1);
                (
                    next.map(|l| l.code.trim_start().to_owned())
                        .unwrap_or_default(),
                    raw.get(idx + 1).map(|l| l.trim_start()).unwrap_or(""),
                )
            } else {
                let off = after.len() - trimmed.len();
                (
                    trimmed.to_owned(),
                    raw.get(idx)
                        .and_then(|l| l.get(at + ".expect(".len() + off..))
                        .unwrap_or(""),
                )
            };
            if !msg_code.starts_with('"') {
                push(
                    "`.expect(…)` message must be a string literal naming the invariant".to_owned(),
                );
                continue;
            }
            let inner_len = msg_code[1..]
                .find('"')
                .unwrap_or(msg_code.len().saturating_sub(1));
            let msg = msg_raw.get(1..1 + inner_len).unwrap_or("").trim();
            if msg.len() < MIN_EXPECT_MESSAGE {
                push(format!(
                    "`.expect(\"{msg}\")` message is too short to document an invariant \
                     (min {MIN_EXPECT_MESSAGE} chars)"
                ));
            }
        }
    }
}

/// Rule `index`: `expr[` indexing (identifier, `)` or `]` directly
/// before `[`) — panics on out-of-range/missing keys; `.get` does not.
fn rule_index(file: &SourceFile, lexed: &LexedFile, findings: &mut Vec<Finding>) {
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code: Vec<char> = line.code.chars().collect();
        for (i, &c) in code.iter().enumerate() {
            if c != '[' {
                continue;
            }
            let before = code[..i].iter().rev().find(|c| !c.is_whitespace());
            let indexes = before.is_some_and(|&p| is_ident_char(p) || p == ')' || p == ']');
            if indexes {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: RuleId::Index,
                    message: "indexing can panic; use `.get(…)` or document the invariant"
                        .to_owned(),
                });
            }
        }
    }
}

/// Rule `hash-iter`: iterating an identifier bound to a
/// `HashMap`/`HashSet` without an ordering step within reach.
fn rule_hash_iter(file: &SourceFile, lexed: &LexedFile, findings: &mut Vec<Finding>) {
    // Pass 1: identifiers bound to hash collections.
    let mut idents: Vec<String> = Vec::new();
    for line in &lexed.lines {
        if line.in_test {
            continue;
        }
        for tok in ["HashMap", "HashSet"] {
            for at in find_token(&line.code, tok) {
                if let Some(ident) = binder_before(&line.code, at) {
                    if !idents.contains(&ident) {
                        idents.push(ident);
                    }
                }
            }
        }
    }
    // Pass 2: unordered iteration over those identifiers.
    const ITERS: [&str; 7] = [
        ".iter()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_values()",
        ".drain(",
    ];
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for ident in &idents {
            let mut hit = false;
            for at in find_token(code, ident) {
                let rest = &code[at + ident.len()..];
                if ITERS.iter().any(|m| rest.starts_with(m)) {
                    hit = true;
                }
            }
            // `for (k, v) in map {` consumes the map by value.
            if let Some(inpos) = code.find(" in ") {
                let tail = &code[inpos + 4..];
                if code.trim_start().starts_with("for ")
                    && find_token(tail, ident)
                        .iter()
                        .any(|&p| !tail[p + ident.len()..].starts_with('.'))
                {
                    hit = true;
                }
            }
            if hit && !ordered_context(lexed, idx) {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: RuleId::HashIter,
                    message: format!(
                        "iteration over `{ident}` (HashMap/HashSet) is unordered; sort the \
                         result or collect into a BTree collection"
                    ),
                });
            }
        }
    }
}

/// An ordering step within two lines either side (sort-then-iterate and
/// collect-then-sort idioms) makes hash iteration deterministic.
fn ordered_context(lexed: &LexedFile, idx: usize) -> bool {
    lexed
        .lines
        .iter()
        .skip(idx.saturating_sub(2))
        .take(5)
        .any(|l| l.code.contains(".sort") || l.code.contains("BTree"))
}

/// The identifier bound at a `HashMap`/`HashSet` mention: handles
/// `let [mut] x: HashMap…`, `x: HashMap…` (fields/params) and
/// `let [mut] x = HashMap::…`.
fn binder_before(code: &str, at: usize) -> Option<String> {
    let mut before = code[..at].trim_end();
    for strip in ["&mut", "&", "mut"] {
        before = before.strip_suffix(strip).unwrap_or(before).trim_end();
    }
    for path in ["std::collections::", "collections::", "std::"] {
        before = before.strip_suffix(path).unwrap_or(before);
    }
    // A binder sits right before `: Type` or `= value`.
    let before = before.trim_end().strip_suffix([':', '='])?.trim_end();
    let name: String = before
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

/// Rule `wallclock`: wall-clock reads outside the metrics layer.
fn rule_wallclock(file: &SourceFile, lexed: &LexedFile, findings: &mut Vec<Finding>) {
    if file.path == "crates/support/src/metrics.rs" {
        return;
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test || line.code.trim_start().starts_with("use ") {
            continue;
        }
        for tok in ["Instant::now", "SystemTime"] {
            for _ in line.code.matches(tok) {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: RuleId::Wallclock,
                    message: format!(
                        "`{tok}` outside smash-support::metrics makes runs time-dependent"
                    ),
                });
            }
        }
    }
}

/// Rule `dim-coverage`: structural invariants of the dimension layer.
fn rule_dim_coverage(file: &SourceFile, lexed: &LexedFile, findings: &mut Vec<Finding>) {
    if !file.path.split('/').any(|seg| seg == "dimensions") {
        return;
    }
    let line_of = |needle: &str| -> Option<usize> {
        lexed
            .lines
            .iter()
            .position(|l| l.code.contains(needle))
            .map(|i| i + 1)
    };
    let contains = |needle: &str| lexed.lines.iter().any(|l| l.code.contains(needle));
    if let Some(at) = line_of("impl Dimension for") {
        if !contains("instrumented_builder(") {
            findings.push(Finding {
                path: file.path.clone(),
                line: at,
                rule: RuleId::DimCoverage,
                message: "dimension builder does not run under `instrumented_builder` \
                          (failpoint site + duration span + funnel counters)"
                    .to_owned(),
            });
        }
    }
    if let Some(at) = line_of("fn instrumented_builder") {
        if !contains("failpoint::fire") {
            findings.push(Finding {
                path: file.path.clone(),
                line: at,
                rule: RuleId::DimCoverage,
                message: "`instrumented_builder` lost its deterministic failpoint site".to_owned(),
            });
        }
        if !contains(".span(") {
            findings.push(Finding {
                path: file.path.clone(),
                line: at,
                rule: RuleId::DimCoverage,
                message: "`instrumented_builder` lost its duration span".to_owned(),
            });
        }
    }
}

/// Rule `docs`: public items in `crates/core` / `crates/graph` need a
/// doc comment. (Fixture trees opt in through a `docs` path segment.)
fn rule_docs(file: &SourceFile, lexed: &LexedFile, raw: &[&str], findings: &mut Vec<Finding>) {
    let scoped = file.path.starts_with("crates/core/src")
        || file.path.starts_with("crates/graph/src")
        || file.path.split('/').any(|seg| seg == "docs");
    if !scoped {
        return;
    }
    // `pub mod x;` is exempt: the module documents itself with inner
    // `//!` docs, which this line-oriented pass cannot see.
    const ITEMS: [&str; 11] = [
        "pub fn ",
        "pub async fn ",
        "pub unsafe fn ",
        "pub const fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub type ",
        "pub const ",
        "pub static ",
        "pub union ",
    ];
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let trimmed = line.code.trim_start();
        if !ITEMS.iter().any(|p| trimmed.starts_with(p)) {
            continue;
        }
        // Walk up over attributes to the nearest doc position.
        let mut j = idx;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let above = raw.get(j).map(|l| l.trim_start()).unwrap_or("");
            // Skip over attributes, including multi-line `#[derive(…)]`.
            if above.starts_with("#[") || above.ends_with(")]") {
                continue;
            }
            documented = above.starts_with("///")
                || above.starts_with("/**")
                || above.starts_with("#[doc")
                || above.starts_with("*/")
                || above.ends_with("*/");
            break;
        }
        if !documented {
            findings.push(Finding {
                path: file.path.clone(),
                line: idx + 1,
                rule: RuleId::Docs,
                message: format!(
                    "public item `{}` lacks a doc comment",
                    trimmed.split('(').next().unwrap_or(trimmed).trim()
                ),
            });
        }
    }
}
