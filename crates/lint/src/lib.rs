//! `smash-lint`: the in-tree invariant linter for the SMASH workspace.
//!
//! The pipeline's correctness claims rest on invariants no compiler
//! checks: byte-deterministic reports, panic-freedom on untrusted
//! traces, and instrumentation coverage of every dimension builder.
//! This crate enforces them with a lightweight lexer ([`lexer`]), a
//! rule engine ([`rules`]), and a committed ratchet baseline
//! ([`baseline`]) so existing debt is frozen while new violations fail
//! CI. See DESIGN.md §8 for the rule catalog and ratchet semantics.
//!
//! Hermetic by construction: no dependencies beyond `smash-support`
//! (JSON only), no network, no build scripts.

#![warn(missing_docs)]

pub mod baseline;
pub mod cli;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use baseline::{Baseline, BaselineDiff};
pub use rules::{lint_file, lint_files, Finding, LintConfig, RuleId, SourceFile};
