pub fn f(x: Option<u32>) -> u32 {
    x.expect("caller guarantees Some: validated at parse time")
}

pub fn g() {
    // lint:allow(panic): fixture demonstrates an in-place suppression.
    panic!("by design");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
