pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("ok");
    if a > b {
        panic!("a exceeded b");
    }
    todo!()
}
