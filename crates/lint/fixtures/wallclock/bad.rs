use std::time::Instant;

pub fn f() -> u64 {
    let t = Instant::now();
    t.elapsed().as_millis() as u64
}
