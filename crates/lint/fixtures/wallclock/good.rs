pub fn f(now_ms: u64, then_ms: u64) -> u64 {
    now_ms.saturating_sub(then_ms)
}
