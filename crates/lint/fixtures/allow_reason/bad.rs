pub fn f() {
    // lint:allow(panic)
    panic!("reason was omitted above");
    // lint:allow(nonexistent): this rule does not exist.
    // lint:allow(index) the colon before this reason is missing
}
