pub fn f() {
    // lint:allow(panic): fixture demonstrates a correctly-formed suppression.
    panic!("suppressed");
}
