pub struct FakeDimension;

impl Dimension for FakeDimension {
    fn build_graph(&self) {
        instrumented_builder(ctx, kind, |builder, funnel| {})
    }
}

fn instrumented_builder() {
    failpoint::fire("dimension/fake");
    let _span = metrics.span("dim/fake/build");
}
