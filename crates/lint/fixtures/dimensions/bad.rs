pub struct FakeDimension;

impl Dimension for FakeDimension {
    fn build_graph(&self) {}
}
