pub fn instrumented_builder() {
    body();
}
