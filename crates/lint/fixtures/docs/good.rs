/// Documented function.
pub fn documented() {}

/// Documented struct.
#[derive(Debug)]
pub struct S;
