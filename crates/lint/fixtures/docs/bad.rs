pub fn undocumented() {}

/// Documented.
pub fn documented() {}
