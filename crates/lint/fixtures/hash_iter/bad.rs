use std::collections::HashMap;

pub fn f(counts: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in counts.iter() {
        out.push(*k);
    }
    out
}
