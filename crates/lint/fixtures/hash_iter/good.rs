use std::collections::HashMap;

pub fn f(counts: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = counts.keys().copied().collect();
    keys.sort_unstable();
    keys
}
