pub fn f(v: &[u32], i: usize) -> u32 {
    v[i]
}
