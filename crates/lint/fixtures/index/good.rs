pub fn f(v: &[u32], i: usize) -> Option<u32> {
    v.get(i).copied()
}

pub fn g(v: &[u32]) -> u32 {
    // lint:allow(index): the caller contract guarantees a non-empty slice.
    v[0]
}
