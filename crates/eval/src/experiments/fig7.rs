//! Figure 7 — persistent vs agile campaigns across the week.
//!
//! Day 1 is the benchmark. For every later day, each inferred malicious
//! server is classified as: *old server* (already inferred on day 1),
//! *new server / old client* (an agile campaign rotating its
//! infrastructure under known-infected clients), or
//! *new server / new client* (a brand-new campaign).

use crate::harness::run_smash;
use crate::table::TextTable;
use smash_core::tracker::CampaignTracker;
use smash_core::SmashConfig;
use smash_synth::WeekScenario;

/// Regenerates the Fig. 7 evolution counts using the daily-deployment
/// [`CampaignTracker`].
pub fn run(seed: u64) -> String {
    let week = WeekScenario::data2012_week(seed).generate();
    let mut t = TextTable::new(vec![
        "Day",
        "servers",
        "old server",
        "new server / old client",
        "new server / new client",
        "new clients",
    ]);
    let mut tracker = CampaignTracker::new();
    for (d, day) in week.days.iter().enumerate() {
        let report = run_smash(day, SmashConfig::default());
        let delta = tracker.observe(&report, &day.dataset);
        if d == 0 {
            t.row(vec![
                "1 (benchmark)".into(),
                delta.server_count().to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                delta.new_clients.len().to_string(),
            ]);
            continue;
        }
        t.row(vec![
            (d + 1).to_string(),
            delta.server_count().to_string(),
            delta.persistent.len().to_string(),
            delta.agile.len().to_string(),
            delta.new_campaign.len().to_string(),
            delta.new_clients.len().to_string(),
        ]);
    }
    format!(
        "Figure 7 — persistent vs agile campaigns over Data2012week\n\
         (paper: most servers belong to agile campaigns — new servers, old clients)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_synth::NoiseSpec;
    use std::collections::BTreeSet;

    #[test]
    fn small_week_classifies_servers() {
        // Shrunk week with one persistent and one agile campaign.
        let mut w = WeekScenario::data2012_week(4);
        w.days = 2;
        w.base.n_clients = 120;
        w.base.n_benign_servers = 300;
        w.base.mean_client_requests = 10;
        w.base.noise = NoiseSpec::none();
        w.plans.truncate(4);
        let week = w.generate();
        let d0 = run_smash(&week.days[0], SmashConfig::default());
        let d1 = run_smash(&week.days[1], SmashConfig::default());
        let s0: BTreeSet<&String> = d0.campaigns.iter().flat_map(|c| &c.servers).collect();
        let s1: BTreeSet<&String> = d1.campaigns.iter().flat_map(|c| &c.servers).collect();
        // Persistent campaigns overlap; agile ones rotate — so the two
        // days intersect but neither contains the other.
        assert!(
            s0.intersection(&s1).next().is_some(),
            "persistent servers missing"
        );
        assert!(
            s1.difference(&s0).next().is_some(),
            "agile rotation missing"
        );
    }
}
