//! Table I — ISP network traffic statistics.

use crate::table::TextTable;
use smash_synth::{Scenario, WeekScenario};
use smash_trace::TraceStats;

/// Regenerates Table I over the three scenario presets.
pub fn run(seed: u64) -> String {
    let d2011 = Scenario::data2011_day(seed).generate();
    let d2012 = Scenario::data2012_day(seed).generate();
    let week = WeekScenario::data2012_week(seed).generate();

    let s2011 = TraceStats::compute(&d2011.dataset);
    let s2012 = TraceStats::compute(&d2012.dataset);
    // Week totals: distinct counts are per-day; the paper reports the
    // union, which we approximate by summing requests and taking the
    // per-day unions of names through the ground truth + datasets.
    let mut week_requests = 0;
    let mut week_clients = std::collections::BTreeSet::new();
    let mut week_servers = std::collections::BTreeSet::new();
    let mut week_files = std::collections::BTreeSet::new();
    for day in &week.days {
        week_requests += day.dataset.record_count();
        for r in day.dataset.records() {
            week_clients.insert(day.dataset.client_name(r.client).to_owned());
            week_servers.insert(day.dataset.server_name(r.server).to_owned());
            week_files.insert(day.dataset.file_name(r.file).to_owned());
        }
    }

    let mut t = TextTable::new(vec!["", "Data2011day", "Data2012day", "Data2012week"]);
    t.row(vec![
        "# of clients".into(),
        s2011.clients.to_string(),
        s2012.clients.to_string(),
        week_clients.len().to_string(),
    ]);
    t.row(vec![
        "# of HTTP requests".into(),
        s2011.http_requests.to_string(),
        s2012.http_requests.to_string(),
        week_requests.to_string(),
    ]);
    t.row(vec![
        "# of servers".into(),
        s2011.servers.to_string(),
        s2012.servers.to_string(),
        week_servers.len().to_string(),
    ]);
    t.row(vec![
        "# of URI files".into(),
        s2011.uri_files.to_string(),
        s2012.uri_files.to_string(),
        week_files.len().saturating_sub(1).to_string(), // minus the "" entry
    ]);
    format!(
        "Table I — trace statistics (synthetic, ~1/20 of the paper's scale)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_rows() {
        let out = super::run(11);
        assert!(out.contains("# of clients"));
        assert!(out.contains("# of HTTP requests"));
        assert!(out.contains("Data2012week"));
        // The week has more requests than either day.
        assert!(out.lines().count() >= 6);
    }
}
