//! Tables XI and XII — the single-client-campaign regime (Appendix C),
//! swept over the inference threshold.

use crate::harness::run_day;
use crate::table::TextTable;
use smash_core::SmashConfig;
use smash_groundtruth::{CampaignBreakdown, ServerBreakdown};
use smash_synth::{Scenario, ScenarioData};

use super::tables23::THRESHOLDS;

fn sweep(data: &ScenarioData) -> (Vec<CampaignBreakdown>, Vec<ServerBreakdown>) {
    let mut c = Vec::new();
    let mut s = Vec::new();
    for &t in &THRESHOLDS {
        let run = run_day(data, SmashConfig::default().with_single_client_threshold(t));
        c.push(run.single_campaign_breakdown());
        s.push(run.single_server_breakdown());
    }
    (c, s)
}

fn header() -> Vec<String> {
    let mut h = vec!["Threshold".to_string()];
    for ds in ["2011", "2012"] {
        for t in THRESHOLDS {
            h.push(format!("{ds}:{t}"));
        }
    }
    h
}

/// Regenerates Table XI (single-client campaigns).
pub fn run_table11(seed: u64) -> String {
    let sweeps = [
        sweep(&Scenario::data2011_day(seed).generate()),
        sweep(&Scenario::data2012_day(seed).generate()),
    ];
    let get = |d: usize, i: usize| -> &CampaignBreakdown { &sweeps[d].0[i] };
    let mut t = TextTable::new(header());
    let mut row = |label: &str, f: &dyn Fn(&CampaignBreakdown) -> usize| {
        let mut r = vec![label.to_string()];
        for d in 0..2 {
            for i in 0..THRESHOLDS.len() {
                r.push(f(get(d, i)).to_string());
            }
        }
        t.row(r);
    };
    row("SMASH", &|b| b.smash);
    row("IDS total", &|b| b.ids2012_total + b.ids2013_total);
    row("IDS partial", &|b| b.ids2012_partial + b.ids2013_partial);
    row("Blacklist", &|b| b.blacklist_partial);
    row("Suspicious", &|b| b.suspicious);
    row("False Positives", &|b| b.false_positives);
    row("FP (Updated)", &|b| b.fp_updated);
    format!(
        "Table XI — number of attack campaigns with a single client\n\n{}",
        t.render()
    )
}

/// Regenerates Table XII (servers in single-client campaigns).
pub fn run_table12(seed: u64) -> String {
    let sweeps = [
        sweep(&Scenario::data2011_day(seed).generate()),
        sweep(&Scenario::data2012_day(seed).generate()),
    ];
    let get = |d: usize, i: usize| -> &ServerBreakdown { &sweeps[d].1[i] };
    let mut t = TextTable::new(header());
    let mut row = |label: &str, f: &dyn Fn(&ServerBreakdown) -> usize| {
        let mut r = vec![label.to_string()];
        for d in 0..2 {
            for i in 0..THRESHOLDS.len() {
                r.push(f(get(d, i)).to_string());
            }
        }
        t.row(r);
    };
    row("SMASH", &|b| b.smash);
    row("IDS 2012", &|b| b.ids2012);
    row("IDS 2013", &|b| b.ids2013);
    row("Blacklist", &|b| b.blacklist);
    row("New Servers", &|b| b.new_servers);
    row("Suspicious", &|b| b.suspicious);
    row("FP", &|b| b.false_positives);
    row("FP (Updated)", &|b| b.fp_updated);
    format!(
        "Table XII — number of servers involved in single-client campaigns\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_counts_do_not_grow_with_threshold() {
        let data = Scenario::small_day(8).generate();
        let (c, s) = sweep(&data);
        for w in c.windows(2) {
            assert!(w[0].smash >= w[1].smash);
        }
        for w in s.windows(2) {
            assert!(w[0].smash >= w[1].smash);
        }
    }
}
