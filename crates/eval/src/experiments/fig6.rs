//! Figure 6 — distributions of campaign size and per-campaign client
//! count.

use crate::harness::run_smash;
use crate::table::render_cdf;
use smash_core::SmashConfig;
use smash_synth::Scenario;

/// Regenerates the Fig. 6 CDFs over all inferred campaigns (both
/// regimes, as in the paper).
pub fn run(seed: u64) -> String {
    let data = Scenario::data2011_day(seed).generate();
    let report = run_smash(&data, SmashConfig::default());
    let sizes: Vec<usize> = report.campaigns.iter().map(|c| c.server_count()).collect();
    let clients: Vec<usize> = report.campaigns.iter().map(|c| c.client_count).collect();
    let single = report.campaigns.iter().filter(|c| c.single_client).count();
    format!(
        "Figure 6 — campaign size and client count distributions\n\
         ({} campaigns; {} single-client — paper: 75% of campaigns have one client)\n\n{}\n{}",
        report.campaigns.len(),
        single,
        render_cdf("campaign size", &sizes),
        render_cdf("clients", &clients),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_both_cdfs() {
        let out = super::run(5);
        assert!(out.contains("campaign size"));
        assert!(out.contains("clients"));
    }
}
