//! Figure 3 / §V-C1 — what the main (client-similarity) dimension's
//! herds are made of.
//!
//! The paper manually classified 50 random main-dimension ASHs: 60%
//! referrer groups, 10% redirection groups, 8% similar-content, 18%
//! unknown, 4% malicious. We classify *every* herd automatically with
//! the same criteria.

use crate::harness::run_smash;
use crate::table::TextTable;
use smash_core::pruning::{dominant_referrer, landing_of};
use smash_core::SmashConfig;
use smash_synth::Scenario;

/// Regenerates the Fig. 3 cluster-composition analysis.
pub fn run(seed: u64) -> String {
    let data = Scenario::data2011_day(seed).generate();
    let report = run_smash(&data, SmashConfig::default());
    let ds = &data.dataset;

    let mut referrer = 0;
    let mut redirection = 0;
    let mut content = 0;
    let mut malicious = 0;
    let mut unknown = 0;
    // Skip the appendix-C single-client herds, as the paper does here.
    for ash in &report.main.ashes {
        let clients: std::collections::BTreeSet<u32> = ash
            .members
            .iter()
            .flat_map(|&s| ds.clients_of(s).iter().copied())
            .collect();
        if clients.len() <= 1 {
            continue;
        }
        let n = ash.members.len();
        let with_ref = ash
            .members
            .iter()
            .filter(|&&s| dominant_referrer(ds, s, 0.5).is_some())
            .count();
        let with_redirect = ash
            .members
            .iter()
            .filter(|&&s| landing_of(ds, s, 8) != s)
            .count();
        let truth_malicious = ash
            .members
            .iter()
            .filter(|&&s| data.truth.involved_in_malicious_activity(ds.server_name(s)))
            .count();
        // Similar content: members share a large fraction of URI files.
        let mut file_union: std::collections::BTreeSet<u32> = Default::default();
        let mut file_sum = 0usize;
        for &s in &ash.members {
            file_sum += ds.files_of(s).len();
            file_union.extend(ds.files_of(s).iter().copied());
        }
        let shared_content =
            !file_union.is_empty() && (file_sum as f64 / file_union.len() as f64) >= 1.8;

        if 2 * truth_malicious > n {
            malicious += 1;
        } else if 2 * with_ref >= n {
            referrer += 1;
        } else if 2 * with_redirect >= n {
            redirection += 1;
        } else if shared_content {
            content += 1;
        } else {
            unknown += 1;
        }
    }
    let total = (referrer + redirection + content + malicious + unknown).max(1);
    let pct = |x: usize| format!("{:.0}%", 100.0 * x as f64 / total as f64);
    let mut t = TextTable::new(vec!["group type", "count", "share", "paper"]);
    t.row(vec![
        "referrer groups".into(),
        referrer.to_string(),
        pct(referrer),
        "60%".into(),
    ]);
    t.row(vec![
        "redirection groups".into(),
        redirection.to_string(),
        pct(redirection),
        "10%".into(),
    ]);
    t.row(vec![
        "similar content".into(),
        content.to_string(),
        pct(content),
        "8%".into(),
    ]);
    t.row(vec![
        "unknown".into(),
        unknown.to_string(),
        pct(unknown),
        "18%".into(),
    ]);
    t.row(vec![
        "malicious".into(),
        malicious.to_string(),
        pct(malicious),
        "4%".into(),
    ]);
    format!(
        "Figure 3 / §V-C1 — composition of main-dimension (client-similarity) herds\n\
         ({} multi-client herds classified)\n\n{}",
        total,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn classification_renders_all_groups() {
        let out = super::run(3);
        assert!(out.contains("referrer groups"));
        assert!(out.contains("malicious"));
        assert!(out.contains("unknown"));
    }
}
