//! One module per paper table/figure, plus the experiment registry.

pub mod ablation;
pub mod baseline;
pub mod case_studies;
pub mod extensions;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod figs910;
pub mod shapes;
pub mod stability;
pub mod table1;
pub mod table4;
pub mod tables1112;
pub mod tables23;
pub mod tables56;

/// One reproducible experiment.
#[derive(Clone)]
pub struct Experiment {
    /// Short id used on the `repro` command line (e.g. `table2`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// What the paper reports in this table/figure.
    pub paper: &'static str,
    /// Runs the experiment with a seed and renders its output.
    pub run: fn(u64) -> String,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment").field("id", &self.id).finish()
    }
}

/// Every experiment, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Table I — trace statistics",
            paper: "clients / HTTP requests / servers / URI files per dataset",
            run: table1::run,
        },
        Experiment {
            id: "table2",
            title: "Table II — number of malicious campaigns vs threshold",
            paper: "campaign counts and confirmation taxonomy at thresh 0.5/0.8/1.0/1.5",
            run: tables23::run_table2,
        },
        Experiment {
            id: "table3",
            title: "Table III — number of servers in malicious activities vs threshold",
            paper: "server counts and confirmation taxonomy; FP rate 0.064% at 0.8",
            run: tables23::run_table3,
        },
        Experiment {
            id: "table4",
            title: "Table IV — attack categories",
            paper: "C&C / web exploit / phishing / drop zone / scanner / iframe breakdown",
            run: table4::run,
        },
        Experiment {
            id: "table5",
            title: "Table V — attack campaigns per day over the week",
            paper: "SMASH infers 31–51 campaigns per day with few FPs",
            run: tables56::run_table5,
        },
        Experiment {
            id: "table6",
            title: "Table VI — servers in malicious activities per day over the week",
            paper: "~1k servers per day, mostly new (agile) servers",
            run: tables56::run_table6,
        },
        Experiment {
            id: "table7",
            title: "Table VII — Bagle botnet case study",
            paper: "two stages: download servers (file.txt) + C&C (news.php p=[]&id=[]&e=[])",
            run: case_studies::run_bagle,
        },
        Experiment {
            id: "table8",
            title: "Table VIII — Sality botnet case study",
            paper: "two C&C on shared IP/Whois requesting '/', gif download servers, KUKU UA",
            run: case_studies::run_sality,
        },
        Experiment {
            id: "table9",
            title: "Table IX — iframe injection case study",
            paper: "~600 benign Wordpress servers, shared sm3.php, UA '-'; IDS saw only 4",
            run: case_studies::run_iframe,
        },
        Experiment {
            id: "table10",
            title: "Table X — Zeus botnet case study",
            paper: "DGA sibling domains on cz.cc, shared IP + login.php; 2013 IDS catches all",
            run: case_studies::run_zeus,
        },
        Experiment {
            id: "table11",
            title: "Table XI — single-client campaigns vs threshold",
            paper: "more campaigns, higher FP than multi-client; judged at thresh 1.0",
            run: tables1112::run_table11,
        },
        Experiment {
            id: "table12",
            title: "Table XII — servers in single-client campaigns vs threshold",
            paper: "server counts for the single-client regime",
            run: tables1112::run_table12,
        },
        Experiment {
            id: "fig3",
            title: "Figure 3 — client-similarity cluster composition",
            paper: "main-dimension ASHs: referrer/redirection/content/unknown/malicious groups",
            run: fig3::run,
        },
        Experiment {
            id: "fig6",
            title: "Figure 6 — campaign size and client count distributions",
            paper: "75% of campaigns smaller than 18 servers; 75% have one client",
            run: fig6::run,
        },
        Experiment {
            id: "fig7",
            title: "Figure 7 — persistent vs agile campaigns over the week",
            paper: "most servers belong to agile campaigns (new servers, old clients)",
            run: fig7::run,
        },
        Experiment {
            id: "fig8",
            title: "Figure 8 — effectiveness of secondary dimensions",
            paper: "URI-file dominates (53.71% alone); combos confirm the rest",
            run: fig8::run,
        },
        Experiment {
            id: "baseline",
            title: "Extra — SMASH vs per-server reputation baseline",
            paper: "§II argument: isolation scoring misses compromised/herd-visible servers",
            run: baseline::run,
        },
        Experiment {
            id: "extensions",
            title: "Extra — §VI extension dimensions vs a splitting attacker",
            paper: "param-pattern + timing dimensions catch herds the base dimensions miss",
            run: extensions::run,
        },
        Experiment {
            id: "shapes",
            title: "Extra — automated shape checklist",
            paper: "the DESIGN.md §4 result shapes, verified PASS/FAIL in one run",
            run: shapes::run,
        },
        Experiment {
            id: "ablation",
            title: "Extra — causal dimension ablation",
            paper: "interventional complement to Fig. 8: recall carried by each dimension",
            run: ablation::run,
        },
        Experiment {
            id: "stability",
            title: "Extra — seed stability (precision/recall over 10 worlds)",
            paper: "robustness check: nothing is tuned to one lucky trace",
            run: stability::run,
        },
        Experiment {
            id: "fig9",
            title: "Figure 9 — IDF (popularity) distributions",
            paper: "90% of malicious servers have IDF < 10; threshold 200 keeps 99% of servers",
            run: figs910::run_fig9,
        },
        Experiment {
            id: "fig10",
            title: "Figure 10 — malicious filename length distribution",
            paper: "85% of filenames under 25 chars; obfuscated outliers up to 211",
            run: figs910::run_fig10,
        },
    ]
}

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_tables_and_figures() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for want in [
            "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
            "table9", "table10", "table11", "table12", "fig3", "fig6", "fig7", "fig8", "fig9",
            "fig10",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn find_works() {
        assert!(find("table2").is_some());
        assert!(find("nope").is_none());
    }
}
