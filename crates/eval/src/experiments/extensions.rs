//! Extra experiment — the paper's §VI extension dimensions in action.
//!
//! An attacker who knows SMASH randomizes every per-server artifact:
//! unique handler filenames, one IP per domain, clean per-domain Whois.
//! The three paper dimensions then have nothing to correlate and the
//! herd evades. But the bots still (a) speak one protocol — a fixed
//! query-key pattern — and (b) poll in synchronized bursts. The proposed
//! parameter-pattern and timing dimensions recover exactly this herd.

use crate::harness::run_smash;
use crate::table::TextTable;
use smash_core::{Smash, SmashConfig};
use smash_synth::Scenario;
use smash_trace::{HttpRecord, TraceDataset};
use smash_whois::WhoisRegistry;

/// Builds the small benign background plus one fully-split campaign.
/// Returns (dataset, whois, campaign domains).
pub fn split_campaign_scenario(seed: u64) -> (TraceDataset, WhoisRegistry, Vec<String>) {
    let data = Scenario::small_day(seed).generate();
    let mut records: Vec<HttpRecord> = data
        .dataset
        .records()
        .map(|r| {
            HttpRecord::new(
                r.timestamp,
                data.dataset.client_name(r.client),
                data.dataset.server_name(r.server),
                data.dataset.ip_name(r.ip),
                data.dataset.path_name(r.path),
            )
            .with_user_agent(data.dataset.user_agent_name(r.user_agent))
            .with_status(r.status)
        })
        .collect();
    let domains: Vec<String> = (0..8).map(|i| format!("split{i}x{seed}.biz")).collect();
    // Synchronized polling bursts, deterministic in the seed.
    let bursts = [20_000 + (seed % 7) * 1000, 55_000 + (seed % 5) * 1000];
    for (i, d) in domains.iter().enumerate() {
        for (bi, bot) in ["client-00001", "client-00002", "client-00003"]
            .iter()
            .enumerate()
        {
            for (wi, w) in bursts.iter().enumerate() {
                records.push(
                    HttpRecord::new(
                        w + (i as u64 * 37) + (bi as u64 * 91) + (wi as u64 * 13),
                        bot,
                        d,
                        &format!("185.70.{i}.1"),
                        // Unique path+file per domain; shared key pattern.
                        &format!("/h{i}/u{i}k{seed}.php?cmd={i}&seq={bi}{wi}&tk=9"),
                    )
                    .with_user_agent("Mozilla/4.0 (compatible)"),
                );
            }
        }
    }
    (
        TraceDataset::from_records(records),
        data.whois.clone(),
        domains,
    )
}

fn recovered(
    ds: &TraceDataset,
    whois: &WhoisRegistry,
    config: SmashConfig,
    domains: &[String],
) -> usize {
    let report = Smash::new(config).run(ds, whois);
    domains
        .iter()
        .filter(|d| report.campaigns.iter().any(|c| c.contains_server(d)))
        .count()
}

/// Runs the extension comparison.
pub fn run(seed: u64) -> String {
    let (ds, whois, domains) = split_campaign_scenario(seed);
    let base = recovered(&ds, &whois, SmashConfig::default(), &domains);
    let with_param = recovered(
        &ds,
        &whois,
        SmashConfig::default().with_param_pattern_dimension(true),
        &domains,
    );
    let with_both = recovered(
        &ds,
        &whois,
        SmashConfig::default()
            .with_param_pattern_dimension(true)
            .with_timing_dimension(true),
        &domains,
    );
    let mut t = TextTable::new(vec!["configuration", "split-campaign servers recovered"]);
    t.row(vec!["paper dimensions only".into(), format!("{base}/8")]);
    t.row(vec![
        "+ parameter-pattern".into(),
        format!("{with_param}/8"),
    ]);
    t.row(vec![
        "+ parameter-pattern + timing".into(),
        format!("{with_both}/8"),
    ]);
    // Sanity: the extensions must not regress the planted baseline herds.
    let data = Scenario::small_day(seed).generate();
    let base_all = run_smash(&data, SmashConfig::default()).inferred_server_count();
    let ext_all = run_smash(
        &data,
        SmashConfig::default()
            .with_param_pattern_dimension(true)
            .with_timing_dimension(true),
    )
    .inferred_server_count();
    format!(
        "Extra — §VI extension dimensions vs a dimension-splitting attacker\n\n{}\n\
         On the unmodified small scenario the extensions keep every baseline\n\
         detection ({base_all} → {ext_all} servers).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensions_catch_the_split_campaign() {
        let (ds, whois, domains) = split_campaign_scenario(4);
        // Evades the paper's three dimensions…
        let base = recovered(&ds, &whois, SmashConfig::default(), &domains);
        assert_eq!(base, 0, "split campaign should evade the base dimensions");
        // …but not param-pattern + timing.
        let both = recovered(
            &ds,
            &whois,
            SmashConfig::default()
                .with_param_pattern_dimension(true)
                .with_timing_dimension(true),
            &domains,
        );
        assert_eq!(both, 8, "extensions should recover the whole herd");
    }

    #[test]
    fn renders() {
        let out = run(4);
        assert!(out.contains("parameter-pattern"));
        assert!(out.contains("timing"));
    }
}
