//! Table IV — attack categories of inferred servers.

use crate::harness::run_day;
use crate::table::TextTable;
use smash_core::SmashConfig;
use smash_groundtruth::{ActivityCategory, ActivityKind};
use smash_synth::Scenario;
use std::collections::BTreeMap;

/// Regenerates Table IV: the category breakdown of the servers SMASH
/// inferred on `Data2011day` (categories come from the planted truth,
/// standing in for the paper's IDS-label/blacklist categorization).
pub fn run(seed: u64) -> String {
    let data = Scenario::data2011_day(seed).generate();
    let run = run_day(&data, SmashConfig::default());
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut inferred_names: Vec<&String> = Vec::new();
    for c in &run.report.campaigns {
        inferred_names.extend(c.servers.iter());
    }
    inferred_names.sort_unstable();
    inferred_names.dedup();
    for name in inferred_names {
        let cat = data
            .truth
            .server(name)
            .map(|t| t.category)
            .unwrap_or(ActivityCategory::OtherMalicious);
        let kind = match cat.kind() {
            Some(ActivityKind::Communication) => "Communication",
            Some(ActivityKind::Attacking) => "Attacking",
            None => "Noise (benign)",
        };
        *counts.entry(format!("{kind} / {cat}")).or_insert(0) += 1;
    }
    let mut t = TextTable::new(vec!["Activity / Category", "# of Servers"]);
    for (k, v) in counts {
        t.row(vec![k, v.to_string()]);
    }
    format!(
        "Table IV — attack categories of inferred servers\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn covers_both_activity_kinds() {
        let out = super::run(7);
        assert!(out.contains("Communication"), "{out}");
        assert!(out.contains("Attacking"), "{out}");
        assert!(out.contains("C&C"));
    }
}
