//! `repro ablation` — causal dimension ablation: rerun the pipeline with
//! each secondary dimension removed and measure what recall it was
//! carrying. The correlational view is the paper's Fig. 8; this is the
//! interventional complement DESIGN.md calls for.

use crate::harness::run_smash;
use crate::table::TextTable;
use smash_core::SmashConfig;
use smash_groundtruth::TruthMetrics;
use smash_synth::{Scenario, ScenarioData};

fn metrics(data: &ScenarioData, config: SmashConfig) -> TruthMetrics {
    let report = run_smash(data, config);
    let inferred: Vec<&str> = report
        .campaigns
        .iter()
        .flat_map(|c| c.servers.iter().map(String::as_str))
        .collect();
    TruthMetrics::score(&data.truth, inferred)
}

/// Runs the ablation grid on `Data2011day`.
pub fn run(seed: u64) -> String {
    let data = Scenario::data2011_day(seed).generate();
    let configs: Vec<(&str, SmashConfig)> = vec![
        ("all three dimensions", SmashConfig::default()),
        (
            "without uri-file",
            SmashConfig::default().with_base_dimensions(false, true, true),
        ),
        (
            "without ip-set",
            SmashConfig::default().with_base_dimensions(true, false, true),
        ),
        (
            "without whois",
            SmashConfig::default().with_base_dimensions(true, true, false),
        ),
        (
            "uri-file only",
            SmashConfig::default().with_base_dimensions(true, false, false),
        ),
        (
            "ip-set + whois only",
            SmashConfig::default().with_base_dimensions(false, true, true),
        ),
        (
            "pruning disabled",
            SmashConfig::default().with_pruning(false),
        ),
    ];
    let mut t = TextTable::new(vec!["configuration", "recall", "precision", "inferred"]);
    for (name, config) in configs {
        let m = metrics(&data, config);
        t.row(vec![
            name.to_string(),
            format!("{:.3}", m.recall()),
            format!("{:.3}", m.precision()),
            (m.true_positives + m.false_positives + m.noise_hits).to_string(),
        ]);
    }
    format!(
        "Dimension ablation on Data2011day (seed {seed})\n\n{}\n\
         Expected shape (Fig. 8's causal complement): removing uri-file\n\
         costs by far the most recall; ip-set/whois alone recover only the\n\
         infrastructure-sharing herds.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uri_file_carries_the_most_recall() {
        let data = Scenario::data2011_day(7).generate();
        let full = metrics(&data, SmashConfig::default()).recall();
        let no_file = metrics(
            &data,
            SmashConfig::default().with_base_dimensions(false, true, true),
        )
        .recall();
        let no_ip = metrics(
            &data,
            SmashConfig::default().with_base_dimensions(true, false, true),
        )
        .recall();
        let no_whois = metrics(
            &data,
            SmashConfig::default().with_base_dimensions(true, true, false),
        )
        .recall();
        assert!(full >= no_file && full >= no_ip && full >= no_whois);
        assert!(
            no_file < no_ip && no_file < no_whois,
            "removing uri-file must hurt most: {no_file:.3} vs {no_ip:.3} / {no_whois:.3}"
        );
        assert!(no_file < 0.6 * full, "uri-file carries the bulk of recall");
    }

    #[test]
    fn renders() {
        let out = run(5);
        assert!(out.contains("without uri-file"));
        assert!(out.contains("pruning disabled"));
    }
}
