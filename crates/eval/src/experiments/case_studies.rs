//! Tables VII–X — the paper's campaign case studies, dumped from the
//! inferred campaign that recovered each planted one.

use crate::harness::run_smash;
use crate::table::TextTable;
use smash_core::{SmashConfig, SmashReport};
use smash_synth::{Scenario, ScenarioData};

/// Renders the case-study table for the planted campaign `name`.
fn case_study(seed: u64, name: &str, title: &str) -> String {
    let data = Scenario::data2011_day(seed).generate();
    let report = run_smash(&data, SmashConfig::default());
    render_case(&data, &report, name, title)
}

fn render_case(data: &ScenarioData, report: &SmashReport, name: &str, title: &str) -> String {
    let Some(truth_campaign) = data.truth.campaigns().iter().find(|c| c.name == name) else {
        return format!("{title}\n\n(planted campaign `{name}` not present in scenario)\n");
    };
    let planted = data.truth.servers_of_campaign(truth_campaign.id);
    // The inferred campaign that captured the most planted servers.
    let best = report
        .campaigns
        .iter()
        .max_by_key(|c| planted.iter().filter(|s| c.contains_server(s)).count());
    let Some(best) = best else {
        return format!("{title}\n\n(no campaigns inferred)\n");
    };
    let recovered = planted.iter().filter(|s| best.contains_server(s)).count();

    // Campaign-wide file frequencies: the table should show each server's
    // *attack* request, which bears a file shared across the herd — not a
    // random benign page that happened to be requested first.
    let mut file_freq: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for server in &best.servers {
        if let Some(sid) = data.dataset.server_id(server) {
            for &f in data.dataset.files_of(sid) {
                *file_freq.entry(f).or_insert(0) += 1;
            }
        }
    }
    let mut t = TextTable::new(vec![
        "Category",
        "Server",
        "URI file",
        "UserAgent",
        "Params",
    ]);
    let mut shown = 0;
    for server in &best.servers {
        if shown >= 12 {
            t.row(vec!["...".into()]);
            break;
        }
        let Some(sid) = data.dataset.server_id(server) else {
            continue;
        };
        let Some(rec) = data
            .dataset
            .records_of(sid)
            .max_by_key(|r| file_freq.get(&r.file).copied().unwrap_or(0))
        else {
            continue;
        };
        let category = data
            .truth
            .server(server)
            .map(|st| st.category.to_string())
            .unwrap_or_else(|| "unlabeled".into());
        let file = {
            let f = data.dataset.file_name(rec.file);
            if f.len() > 28 {
                format!("{}…", &f[..28])
            } else {
                f.to_string()
            }
        };
        t.row(vec![
            category,
            server.clone(),
            file,
            data.dataset.user_agent_name(rec.user_agent).to_string(),
            data.dataset
                .param_pattern_name(rec.param_pattern)
                .to_string(),
        ]);
        shown += 1;
    }
    format!(
        "{title}\n\nplanted servers: {}, recovered in one inferred campaign: {recovered}\n\
         inferred campaign size: {} servers, {} client(s)\n\n{}",
        planted.len(),
        best.server_count(),
        best.client_count,
        t.render()
    )
}

/// Table VII — the Bagle two-stage campaign.
pub fn run_bagle(seed: u64) -> String {
    case_study(seed, "bagle", "Table VII — Bagle botnet")
}

/// Table VIII — the Sality campaign.
pub fn run_sality(seed: u64) -> String {
    case_study(seed, "sality", "Table VIII — Sality botnet")
}

/// Table IX — the iframe-injection campaign.
pub fn run_iframe(seed: u64) -> String {
    case_study(seed, "iframe-inject", "Table IX — iframe injection attack")
}

/// Table X — the Zeus DGA campaign.
pub fn run_zeus(seed: u64) -> String {
    case_study(seed, "zeus", "Table X — Zeus botnet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_smash;

    #[test]
    fn small_scenario_case_study_renders() {
        let data = Scenario::small_day(3).generate();
        let report = run_smash(&data, SmashConfig::default());
        let out = render_case(&data, &report, "dga-small", "DGA case");
        assert!(out.contains("planted servers: 6"), "{out}");
        assert!(out.contains("login.php"), "{out}");
    }

    #[test]
    fn missing_campaign_is_reported_gracefully() {
        let data = Scenario::small_day(3).generate();
        let report = run_smash(&data, SmashConfig::default());
        let out = render_case(&data, &report, "not-planted", "X");
        assert!(out.contains("not present"));
    }
}
