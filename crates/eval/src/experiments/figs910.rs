//! Figures 9 and 10 (appendices A and B) — the distributions behind the
//! IDF and filename-length threshold choices.

use crate::table::render_cdf;
use smash_core::preprocess::{filter_popular, idf, idf_distribution};
use smash_synth::Scenario;

/// Regenerates Fig. 9: the IDF (distinct-client) distribution of all
/// servers, and of the servers involved in malicious activities.
pub fn run_fig9(seed: u64) -> String {
    let data = Scenario::data2011_day(seed).generate();
    let all = idf_distribution(&data.dataset);
    let malicious: Vec<usize> = data
        .dataset
        .server_ids()
        .filter(|&s| {
            data.truth
                .involved_in_malicious_activity(data.dataset.server_name(s))
        })
        .map(|s| idf(&data.dataset, s))
        .collect();
    let pre = filter_popular(&data.dataset, 200);
    let kept_frac =
        pre.kept.len() as f64 / (pre.kept.len() + pre.dropped_popular.len()).max(1) as f64;
    let mal_below_10 = malicious.iter().filter(|&&v| v < 10).count();
    format!(
        "Figure 9 — IDF (popularity) distributions\n\
         threshold 200 keeps {:.1}% of servers (paper: 99%)\n\
         {:.0}% of malicious servers have IDF < 10 clients (paper: 90%)\n\n\
         All servers:\n{}\nMalicious servers:\n{}",
        100.0 * kept_frac,
        100.0 * mal_below_10 as f64 / malicious.len().max(1) as f64,
        render_cdf("idf", &all),
        render_cdf("idf", &malicious),
    )
}

/// Regenerates Fig. 10: filename lengths on malicious servers.
pub fn run_fig10(seed: u64) -> String {
    let data = Scenario::data2011_day(seed).generate();
    let mut lengths = Vec::new();
    for s in data.dataset.server_ids() {
        let name = data.dataset.server_name(s);
        let Some(truth) = data.truth.server(name) else {
            continue;
        };
        if truth.category.is_noise() {
            continue;
        }
        for &f in data.dataset.files_of(s) {
            lengths.push(data.dataset.file_name(f).len());
        }
    }
    let under_25 = lengths.iter().filter(|&&l| l < 25).count();
    let max = lengths.iter().copied().max().unwrap_or(0);
    format!(
        "Figure 10 — length distribution of filenames on malicious servers\n\
         {:.0}% under 25 chars (paper: 85%); longest: {} chars (paper: 211, obfuscated)\n\n{}",
        100.0 * under_25 as f64 / lengths.len().max(1) as f64,
        max,
        render_cdf("filename length", &lengths),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig9_keeps_nearly_everything_at_200() {
        let out = super::run_fig9(3);
        assert!(out.contains("threshold 200 keeps"));
        assert!(out.contains("Malicious servers:"));
    }

    #[test]
    fn fig10_sees_obfuscated_outliers() {
        let out = super::run_fig10(3);
        // The TDSS-style campaign plants >25-char obfuscated names.
        let longest: usize = out
            .lines()
            .find(|l| l.contains("longest:"))
            .and_then(|l| {
                l.split("longest: ")
                    .nth(1)
                    .and_then(|s| s.split(' ').next())
                    .and_then(|s| s.parse().ok())
            })
            .unwrap_or(0);
        assert!(longest > 25, "{out}");
    }
}
