//! Extra experiment (not a paper table): SMASH vs a per-server
//! reputation baseline — quantifying §II's argument that isolation
//! scoring misses herd-visible infrastructure, especially compromised
//! benign servers.

use crate::harness::run_smash;
use crate::table::TextTable;
use smash_core::baseline::ReputationBaseline;
use smash_core::SmashConfig;
use smash_groundtruth::ActivityCategory;
use smash_synth::Scenario;
use std::collections::BTreeSet;

/// Runs both detectors over `Data2011day` and compares recall/precision
/// per category.
pub fn run(seed: u64) -> String {
    let data = Scenario::data2011_day(seed).generate();
    let ds = &data.dataset;

    let report = run_smash(&data, SmashConfig::default());
    let smash_flagged: BTreeSet<String> = report
        .campaigns
        .iter()
        .flat_map(|c| c.servers.iter().cloned())
        .collect();

    let baseline = ReputationBaseline::default();
    let baseline_flagged: BTreeSet<String> = baseline
        .flagged(ds)
        .into_iter()
        .map(|s| ds.server_name(s).to_owned())
        .collect();

    // Recall per category over the planted truth, precision overall.
    let mut t = TextTable::new(vec!["category", "planted", "SMASH", "baseline"]);
    let mut categories: Vec<(ActivityCategory, usize, usize, usize)> = Vec::new();
    for (server, truth) in data.truth.iter_servers() {
        if truth.category.is_noise() {
            continue;
        }
        let entry = match categories.iter_mut().find(|(c, ..)| *c == truth.category) {
            Some(e) => e,
            None => {
                categories.push((truth.category, 0, 0, 0));
                categories
                    .last_mut()
                    .expect("entry pushed on the line above")
            }
        };
        entry.1 += 1;
        if smash_flagged.contains(server) {
            entry.2 += 1;
        }
        if baseline_flagged.contains(server) {
            entry.3 += 1;
        }
    }
    categories.sort_by_key(|(_, planted, ..)| std::cmp::Reverse(*planted));
    let (mut tp_s, mut tp_b, mut planted_total) = (0, 0, 0);
    for (cat, planted, s, b) in &categories {
        t.row(vec![
            cat.to_string(),
            planted.to_string(),
            s.to_string(),
            b.to_string(),
        ]);
        planted_total += planted;
        tp_s += s;
        tp_b += b;
    }
    let fp_s = smash_flagged
        .iter()
        .filter(|s| !data.truth.involved_in_malicious_activity(s) && !data.truth.is_noise(s))
        .count();
    let fp_b = baseline_flagged
        .iter()
        .filter(|s| !data.truth.involved_in_malicious_activity(s) && !data.truth.is_noise(s))
        .count();
    format!(
        "Extra — SMASH vs per-server reputation baseline (§II comparison)\n\n{}\n\
         totals: planted {planted_total}; SMASH recall {:.0}% with {fp_s} benign FPs; \
         baseline recall {:.0}% with {fp_b} benign FPs.\n\
         The baseline cannot see *compromised* infrastructure (Downloading,\n\
         Web scanner, Iframe injection rows) — herd context is what finds it.\n",
        t.render(),
        100.0 * tp_s as f64 / planted_total.max(1) as f64,
        100.0 * tp_b as f64 / planted_total.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smash_beats_baseline_on_compromised_categories() {
        let data = Scenario::data2011_day(3).generate();
        let ds = &data.dataset;
        let report = run_smash(&data, SmashConfig::default());
        let baseline = ReputationBaseline::default();
        let flagged: BTreeSet<String> = baseline
            .flagged(ds)
            .into_iter()
            .map(|s| ds.server_name(s).to_owned())
            .collect();
        let mut smash_hits = 0;
        let mut baseline_hits = 0;
        let mut total = 0;
        for (server, truth) in data.truth.iter_servers() {
            // Compromised/attacked *benign* servers.
            if matches!(
                truth.category,
                ActivityCategory::Downloading
                    | ActivityCategory::IframeInjection
                    | ActivityCategory::WebScanner
            ) {
                total += 1;
                if report.campaigns.iter().any(|c| c.contains_server(server)) {
                    smash_hits += 1;
                }
                if flagged.contains(server) {
                    baseline_hits += 1;
                }
            }
        }
        assert!(total > 50);
        assert!(
            smash_hits as f64 >= 0.8 * total as f64,
            "SMASH recall on compromised servers: {smash_hits}/{total}"
        );
        assert!(
            baseline_hits as f64 <= 0.3 * total as f64,
            "baseline should miss compromised servers: {baseline_hits}/{total}"
        );
    }

    #[test]
    fn renders() {
        let out = run(5);
        assert!(out.contains("baseline"));
        assert!(out.contains("recall"));
    }
}
