//! `repro stability` — seed-robustness of the reproduction: the planted
//! ground truth's precision/recall across many independently generated
//! worlds. The paper evaluates on fixed traces; the simulator lets us
//! check that nothing was tuned to a single lucky seed.

use crate::harness::run_smash;
use crate::table::TextTable;
use smash_core::SmashConfig;
use smash_groundtruth::TruthMetrics;
use smash_synth::Scenario;

/// Seeds checked by the stability experiment.
pub const SEEDS: [u64; 10] = [1, 2, 3, 5, 7, 11, 13, 17, 21, 99];

/// Runs the pipeline on `Data2011day` for every seed and reports the
/// truth metrics.
pub fn run(_seed: u64) -> String {
    let mut t = TextTable::new(vec![
        "seed",
        "precision",
        "recall",
        "F1",
        "noise hits",
        "missed",
    ]);
    let mut sum_p = 0.0;
    let mut sum_r = 0.0;
    let mut min_r: f64 = 1.0;
    for &seed in &SEEDS {
        let data = Scenario::data2011_day(seed).generate();
        let report = run_smash(&data, SmashConfig::default());
        let inferred: Vec<&str> = report
            .campaigns
            .iter()
            .flat_map(|c| c.servers.iter().map(String::as_str))
            .collect();
        let m = TruthMetrics::score(&data.truth, inferred);
        sum_p += m.precision();
        sum_r += m.recall();
        min_r = min_r.min(m.recall());
        t.row(vec![
            seed.to_string(),
            format!("{:.3}", m.precision()),
            format!("{:.3}", m.recall()),
            format!("{:.3}", m.f1()),
            m.noise_hits.to_string(),
            m.false_negatives.to_string(),
        ]);
    }
    let n = SEEDS.len() as f64;
    format!(
        "Seed stability over {} independently generated Data2011day worlds\n\n{}\n\
         mean precision {:.3}, mean recall {:.3}, worst-case recall {:.3}\n\
         (noise hits are the torrent/TeamViewer herds — the paper's removable FP class)\n",
        SEEDS.len(),
        t.render(),
        sum_p / n,
        sum_r / n,
        min_r,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheaper variant of the CLI experiment: three seeds, the same
    /// robustness claim.
    #[test]
    fn precision_and_recall_are_stable_across_seeds() {
        for seed in [2u64, 11, 17] {
            let data = Scenario::data2011_day(seed).generate();
            let report = run_smash(&data, SmashConfig::default());
            let inferred: Vec<&str> = report
                .campaigns
                .iter()
                .flat_map(|c| c.servers.iter().map(String::as_str))
                .collect();
            let m = TruthMetrics::score(&data.truth, inferred);
            assert!(
                m.precision() >= 0.95,
                "seed {seed}: precision {}",
                m.precision()
            );
            assert!(m.recall() >= 0.85, "seed {seed}: recall {}", m.recall());
        }
    }
}
