//! Tables V and VI — the week-long run: campaigns and servers per day.
//!
//! Per the paper's footnote, single-client campaigns are judged at
//! threshold 1.0 and multi-client campaigns at 0.8; both contribute to
//! the daily totals.

use crate::harness::run_day;
use crate::table::TextTable;
use smash_core::SmashConfig;
use smash_groundtruth::{CampaignBreakdown, ServerBreakdown};
use smash_synth::WeekScenario;

fn week_breakdowns(seed: u64) -> (Vec<CampaignBreakdown>, Vec<ServerBreakdown>) {
    let week = WeekScenario::data2012_week(seed).generate();
    let mut campaigns = Vec::new();
    let mut servers = Vec::new();
    for day in &week.days {
        let run = run_day(day, SmashConfig::default());
        // Both regimes contribute to the daily totals.
        let mut judged = run.multi.clone();
        judged.extend(run.single.clone());
        campaigns.push(CampaignBreakdown::from_judged(&judged));
        servers.push(ServerBreakdown::from_judged(&judged));
    }
    (campaigns, servers)
}

fn day_header() -> Vec<String> {
    let mut h = vec![String::new()];
    for d in 1..=7 {
        h.push(format!("Day {d}"));
    }
    h
}

/// Regenerates Table V (campaigns per day).
pub fn run_table5(seed: u64) -> String {
    let (campaigns, _) = week_breakdowns(seed);
    let mut t = TextTable::new(day_header());
    let row = |label: &str, f: &dyn Fn(&CampaignBreakdown) -> usize| -> Vec<String> {
        let mut r = vec![label.to_string()];
        r.extend(campaigns.iter().map(|b| f(b).to_string()));
        r
    };
    t.row(row("SMASH", &|b| b.smash));
    t.row(row("IDS 2013 total", &|b| {
        b.ids2013_total + b.ids2012_total
    }));
    t.row(row("IDS 2013 partial", &|b| {
        b.ids2013_partial + b.ids2012_partial
    }));
    t.row(row("Blacklist", &|b| b.blacklist_partial));
    t.row(row("Suspicious", &|b| b.suspicious));
    t.row(row("False Positives", &|b| b.false_positives));
    t.row(row("FP (Updated)", &|b| b.fp_updated));
    format!(
        "Table V — number of attack campaigns during Data2012week\n\n{}",
        t.render()
    )
}

/// Regenerates Table VI (servers per day).
pub fn run_table6(seed: u64) -> String {
    let (_, servers) = week_breakdowns(seed);
    let mut t = TextTable::new(day_header());
    let row = |label: &str, f: &dyn Fn(&ServerBreakdown) -> usize| -> Vec<String> {
        let mut r = vec![label.to_string()];
        r.extend(servers.iter().map(|b| f(b).to_string()));
        r
    };
    t.row(row("SMASH", &|b| b.smash));
    t.row(row("IDS 2013", &|b| b.ids2013 + b.ids2012));
    t.row(row("Blacklist", &|b| b.blacklist));
    t.row(row("New Servers", &|b| b.new_servers));
    t.row(row("Suspicious", &|b| b.suspicious));
    t.row(row("False Positives", &|b| b.false_positives));
    t.row(row("FP (Updated)", &|b| b.fp_updated));
    format!(
        "Table VI — number of servers involved in malicious activities during Data2012week\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_synth::NoiseSpec;

    /// Shrunk week so the test stays fast; asserts the structural claims
    /// (7 day columns, SMASH row positive on every day).
    #[test]
    fn small_week_runs_every_day() {
        let mut w = WeekScenario::data2012_week(5);
        w.days = 3;
        w.base.n_clients = 120;
        w.base.n_benign_servers = 300;
        w.base.mean_client_requests = 10;
        w.base.noise = NoiseSpec::none();
        w.plans.truncate(4);
        let week = w.generate();
        for day in &week.days {
            let run = run_day(day, SmashConfig::default());
            assert!(!run.report.campaigns.is_empty());
        }
    }
}
