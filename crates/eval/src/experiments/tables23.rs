//! Tables II and III — campaign/server counts and confirmation taxonomy
//! across the inference-threshold sweep.

use crate::harness::run_day;
use crate::table::TextTable;
use smash_core::SmashConfig;
use smash_groundtruth::{CampaignBreakdown, ServerBreakdown};
use smash_synth::{Scenario, ScenarioData};

/// The paper's threshold sweep.
pub const THRESHOLDS: [f64; 4] = [0.5, 0.8, 1.0, 1.5];

struct Sweep {
    campaigns: Vec<CampaignBreakdown>,
    servers: Vec<ServerBreakdown>,
    /// FP-rate denominator: every server in the trace, as in the paper's
    /// headline 0.064% figure.
    total_servers: usize,
}

fn sweep(data: &ScenarioData) -> Sweep {
    let mut campaigns = Vec::new();
    let mut servers = Vec::new();
    for &t in &THRESHOLDS {
        let run = run_day(data, SmashConfig::default().with_threshold(t));
        campaigns.push(run.campaign_breakdown());
        servers.push(run.server_breakdown());
    }
    Sweep {
        campaigns,
        servers,
        total_servers: data.dataset.server_count(),
    }
}

fn header() -> Vec<String> {
    let mut h = vec!["Infer Thresh.".to_string()];
    for ds in ["2011", "2012"] {
        for t in THRESHOLDS {
            h.push(format!("{ds}:{t}"));
        }
    }
    h
}

fn row<F: Fn(usize, usize) -> String>(label: &str, cell: F) -> Vec<String> {
    let mut r = vec![label.to_string()];
    for ds in 0..2 {
        for ti in 0..THRESHOLDS.len() {
            r.push(cell(ds, ti));
        }
    }
    r
}

/// Regenerates Table II (multi-client campaigns).
pub fn run_table2(seed: u64) -> String {
    let sweeps = [
        sweep(&Scenario::data2011_day(seed).generate()),
        sweep(&Scenario::data2012_day(seed).generate()),
    ];
    let get = |ds: usize, ti: usize| -> &CampaignBreakdown { &sweeps[ds].campaigns[ti] };
    let mut t = TextTable::new(header());
    t.row(row("SMASH", |d, i| get(d, i).smash.to_string()));
    t.row(row("IDS 2012 total", |d, i| {
        get(d, i).ids2012_total.to_string()
    }));
    t.row(row("IDS 2013 total", |d, i| {
        get(d, i).ids2013_total.to_string()
    }));
    t.row(row("IDS 2012 partial", |d, i| {
        get(d, i).ids2012_partial.to_string()
    }));
    t.row(row("IDS 2013 partial", |d, i| {
        get(d, i).ids2013_partial.to_string()
    }));
    t.row(row("Blacklist partial", |d, i| {
        get(d, i).blacklist_partial.to_string()
    }));
    t.row(row("Suspicious", |d, i| get(d, i).suspicious.to_string()));
    t.row(row("False Positives", |d, i| {
        get(d, i).false_positives.to_string()
    }));
    t.row(row("FP (Updated)", |d, i| get(d, i).fp_updated.to_string()));
    format!(
        "Table II — number of malicious campaigns (multi-client) vs inference threshold\n\n{}",
        t.render()
    )
}

/// Regenerates Table III (servers in multi-client campaigns), including
/// the headline false-positive rates.
pub fn run_table3(seed: u64) -> String {
    let sweeps = [
        sweep(&Scenario::data2011_day(seed).generate()),
        sweep(&Scenario::data2012_day(seed).generate()),
    ];
    let get = |ds: usize, ti: usize| -> &ServerBreakdown { &sweeps[ds].servers[ti] };
    let mut t = TextTable::new(header());
    t.row(row("SMASH", |d, i| get(d, i).smash.to_string()));
    t.row(row("IDS 2012", |d, i| get(d, i).ids2012.to_string()));
    t.row(row("IDS 2013", |d, i| get(d, i).ids2013.to_string()));
    t.row(row("Blacklist", |d, i| get(d, i).blacklist.to_string()));
    t.row(row("New Servers", |d, i| get(d, i).new_servers.to_string()));
    t.row(row("Suspicious", |d, i| get(d, i).suspicious.to_string()));
    t.row(row("False Positives", |d, i| {
        get(d, i).false_positives.to_string()
    }));
    t.row(row("FP (Updated)", |d, i| get(d, i).fp_updated.to_string()));
    t.row(row("FP rate", |d, i| {
        format!("{:.3}%", 100.0 * get(d, i).fp_rate(sweeps[d].total_servers))
    }));
    t.row(row("FP rate (Updated)", |d, i| {
        format!(
            "{:.3}%",
            100.0 * get(d, i).fp_rate_updated(sweeps[d].total_servers)
        )
    }));
    let mult_08 = get(0, 1)
        .discovery_multiplier()
        .map(|m| format!("{m:.1}x"))
        .unwrap_or_else(|| "n/a".into());
    format!(
        "Table III — number of servers in malicious activities vs inference threshold\n\n{}\n\
         At thresh 0.8 on Data2011day, SMASH surfaces {mult_08} more servers than IDS+blacklists\n\
         (paper: ~7x; 86.5% previously unknown).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The core Table II/III shape claims, checked at a smaller scale so
    /// the test stays fast.
    #[test]
    fn fp_and_counts_decrease_with_threshold() {
        let data = Scenario::small_day(9).generate();
        let s = sweep(&data);
        for w in s.servers.windows(2) {
            assert!(
                w[0].smash >= w[1].smash,
                "server counts must not grow with thresh"
            );
        }
        for w in s.campaigns.windows(2) {
            assert!(
                w[0].smash >= w[1].smash,
                "campaign counts must not grow with thresh"
            );
        }
    }

    #[test]
    fn tables_render() {
        let t2 = run_table2(3);
        assert!(t2.contains("SMASH"));
        assert!(t2.contains("FP (Updated)"));
        let lines: Vec<&str> = t2.lines().collect();
        assert!(lines.len() > 10);
    }
}
