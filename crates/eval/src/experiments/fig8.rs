//! Figure 8 — effectiveness of the secondary dimensions: which
//! combination of dimensions confirmed each inferred server.

use crate::harness::run_smash;
use crate::table::TextTable;
use smash_core::{DimensionKind, SmashConfig};
use smash_synth::Scenario;
use std::collections::BTreeMap;

/// Regenerates the Fig. 8 decomposition.
pub fn run(seed: u64) -> String {
    let data = Scenario::data2011_day(seed).generate();
    let report = run_smash(&data, SmashConfig::default());
    let mut combos: BTreeMap<String, usize> = BTreeMap::new();
    let mut total = 0usize;
    for c in &report.campaigns {
        for dims in &c.dimensions {
            total += 1;
            let key = if dims.is_empty() {
                "(landing-server replacement)".to_string()
            } else {
                dims.iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            };
            *combos.entry(key).or_insert(0) += 1;
        }
    }
    // Per-dimension marginal contribution.
    let mut marginal: BTreeMap<DimensionKind, usize> = BTreeMap::new();
    for c in &report.campaigns {
        for dims in &c.dimensions {
            for &d in dims {
                *marginal.entry(d).or_insert(0) += 1;
            }
        }
    }
    let mut t = TextTable::new(vec!["dimension combination", "servers", "share"]);
    let mut sorted: Vec<(String, usize)> = combos.into_iter().collect();
    sorted.sort_by_key(|e| std::cmp::Reverse(e.1));
    for (combo, n) in sorted {
        t.row(vec![
            combo,
            n.to_string(),
            format!("{:.1}%", 100.0 * n as f64 / total.max(1) as f64),
        ]);
    }
    let mut m = TextTable::new(vec!["dimension (in any combo)", "servers", "share"]);
    for (d, n) in marginal {
        m.row(vec![
            d.to_string(),
            n.to_string(),
            format!("{:.1}%", 100.0 * n as f64 / total.max(1) as f64),
        ]);
    }
    format!(
        "Figure 8 — effectiveness of secondary dimensions over {total} inferred servers\n\
         (paper: URI-file alone contributes 53.71%; IP+file 14.16%; file+whois 17.01%;\n\
          all three 15.05%)\n\n{}\n{}",
        t.render(),
        m.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn uri_file_is_the_dominant_dimension() {
        let out = super::run(7);
        assert!(out.contains("uri-file"), "{out}");
        // The first (largest) combination row should involve uri-file —
        // the paper's headline Fig. 8 finding.
        let first_row = out
            .lines()
            .skip_while(|l| !l.starts_with("dimension combination"))
            .nth(2)
            .unwrap_or("");
        assert!(
            first_row.contains("uri-file"),
            "dominant combo: {first_row}"
        );
    }
}
