//! `repro shapes` — the DESIGN.md §4 shape checklist, verified
//! programmatically in one run and printed as PASS/FAIL rows.
//!
//! These are the result *shapes* the paper reports that must survive the
//! substrate substitution (synthetic trace instead of ISP capture);
//! absolute numbers are scale-dependent and not checked here.

use crate::harness::run_day;
use crate::table::TextTable;
use smash_core::{DimensionKind, SmashConfig};
use smash_synth::Scenario;

struct Check {
    name: &'static str,
    pass: bool,
    detail: String,
}

/// Runs every shape check over `Data2011day`.
pub fn run(seed: u64) -> String {
    let data = Scenario::data2011_day(seed).generate();
    let mut checks: Vec<Check> = Vec::new();

    // One pipeline+judging pass per threshold.
    let runs: Vec<_> = [0.5, 0.8, 1.0, 1.5]
        .iter()
        .map(|&t| run_day(&data, SmashConfig::default().with_threshold(t)))
        .collect();
    let servers: Vec<_> = runs.iter().map(|r| r.server_breakdown()).collect();
    let campaigns: Vec<_> = runs.iter().map(|r| r.campaign_breakdown()).collect();

    // (i) FP count decreases monotonically with thresh, ~0 at 1.5.
    let fp_mono = servers
        .windows(2)
        .all(|w| w[0].false_positives >= w[1].false_positives);
    let fp_end = servers[3].fp_updated;
    checks.push(Check {
        name: "FPs fall with threshold; FP(updated) ~0 at 1.5",
        pass: fp_mono && fp_end <= 3,
        detail: format!(
            "fp = {:?}, updated at 1.5 = {fp_end}",
            servers
                .iter()
                .map(|b| b.false_positives)
                .collect::<Vec<_>>()
        ),
    });

    // (ii) SMASH finds several-fold more than IDS+blacklists at 0.8.
    let mult = servers[1].discovery_multiplier().unwrap_or(0.0);
    checks.push(Check {
        name: "several-fold discovery beyond IDS+blacklists (paper ~7x)",
        pass: mult >= 2.0,
        detail: format!("{mult:.1}x at thresh 0.8"),
    });

    // (iii) URI-file is the dominant secondary dimension.
    let report = &runs[1].report;
    let mut dim_counts = std::collections::HashMap::new();
    let mut total = 0usize;
    for c in &report.campaigns {
        for dims in &c.dimensions {
            total += 1;
            for &d in dims {
                *dim_counts.entry(d).or_insert(0usize) += 1;
            }
        }
    }
    let file = dim_counts
        .get(&DimensionKind::UriFile)
        .copied()
        .unwrap_or(0);
    let ip = dim_counts.get(&DimensionKind::IpSet).copied().unwrap_or(0);
    let whois = dim_counts.get(&DimensionKind::Whois).copied().unwrap_or(0);
    checks.push(Check {
        name: "URI-file dominates the secondary dimensions (paper 53.71%)",
        pass: file > ip && file > whois && 2 * file > total,
        detail: format!(
            "file {:.0}%, ip {:.0}%, whois {:.0}%",
            100.0 * file as f64 / total.max(1) as f64,
            100.0 * ip as f64 / total.max(1) as f64,
            100.0 * whois as f64 / total.max(1) as f64
        ),
    });

    // (iv) Noise herds dominate the false positives (FP updated << FP).
    let b = &servers[1];
    checks.push(Check {
        name: "torrent/TeamViewer noise is the dominant FP source",
        pass: 2 * b.fp_updated <= b.false_positives.max(1),
        detail: format!(
            "{} FPs -> {} after noise removal",
            b.false_positives, b.fp_updated
        ),
    });

    // (v) Zero-day: servers only the 2013 IDS set knows are inferred.
    checks.push(Check {
        name: "zero-day detections (IDS-2013-only servers inferred)",
        pass: b.ids2013 > 0,
        detail: format!("{} servers known only to the 2013 signatures", b.ids2013),
    });

    // (vi) Majority of inferred servers previously unknown (paper 86.5%).
    let confirmed = b.ids2012 + b.ids2013 + b.blacklist;
    checks.push(Check {
        name: "most inferred servers are previously unknown",
        pass: b.new_servers + b.suspicious > confirmed,
        detail: format!(
            "{} new+suspicious vs {confirmed} confirmed",
            b.new_servers + b.suspicious
        ),
    });

    // (vii) Campaign counts fall with the threshold.
    let camp_mono = campaigns.windows(2).all(|w| w[0].smash >= w[1].smash);
    checks.push(Check {
        name: "campaign counts fall with the threshold",
        pass: camp_mono,
        detail: format!(
            "{:?}",
            campaigns.iter().map(|c| c.smash).collect::<Vec<_>>()
        ),
    });

    let mut t = TextTable::new(vec!["shape claim", "verdict", "measured"]);
    let mut all_pass = true;
    for c in &checks {
        all_pass &= c.pass;
        t.row(vec![
            c.name.to_string(),
            if c.pass { "PASS" } else { "FAIL" }.to_string(),
            c.detail.clone(),
        ]);
    }
    format!(
        "Shape checklist (DESIGN.md §4) over Data2011day, seed {seed}\n\n{}\noverall: {}\n",
        t.render(),
        if all_pass {
            "ALL SHAPES HOLD"
        } else {
            "SHAPE REGRESSION"
        }
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_shapes_hold_on_default_seed() {
        let out = super::run(7);
        assert!(out.contains("ALL SHAPES HOLD"), "{out}");
    }
}
