//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use smash_eval::TextTable;
///
/// let mut t = TextTable::new(vec!["metric", "value"]);
/// t.row(vec!["servers".into(), "42".into()]);
/// let s = t.render();
/// assert!(s.contains("servers"));
/// assert!(s.contains("42"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders with aligned columns and a header rule.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |row: &[String], widths: &mut Vec<usize>| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&self.header, &mut widths);
        for r in &self.rows {
            measure(r, &mut widths);
        }
        let fmt_row = |row: &[String]| -> String {
            let mut out = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let pad = width - cell.chars().count();
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', pad));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.extend(std::iter::repeat_n('-', rule_len));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Renders a `(value, cumulative fraction)` CDF series as rows — the
/// textual form of the paper's distribution figures.
pub fn render_cdf(title: &str, values: &[usize]) -> String {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let mut t = TextTable::new(vec![title, "cdf"]);
    if n == 0 {
        return t.render();
    }
    // One row per distinct value (capped to ~20 quantile rows for long
    // series).
    let mut points: Vec<(usize, f64)> = Vec::new();
    for (i, &v) in sorted.iter().enumerate() {
        let frac = (i + 1) as f64 / n as f64;
        if points.last().map(|&(pv, _)| pv) == Some(v) {
            points
                .last_mut()
                .expect("points is non-empty: last() matched above")
                .1 = frac;
        } else {
            points.push((v, frac));
        }
    }
    if points.len() > 20 {
        let step = points.len() as f64 / 20.0;
        let mut sampled = Vec::new();
        for k in 0..20 {
            sampled.push(points[(k as f64 * step) as usize]);
        }
        sampled.push(*points.last().expect("points.len() > 20 in this branch"));
        points = sampled;
    }
    for (v, f) in points {
        t.row(vec![v.to_string(), format!("{:.3}", f)]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(vec!["x"]);
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn cdf_is_monotone() {
        let s = render_cdf("size", &[1, 2, 2, 3, 10]);
        let fracs: Vec<f64> = s
            .lines()
            .skip(2)
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(fracs.windows(2).all(|w| w[0] <= w[1]));
        assert!((fracs.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_of_empty_series() {
        let s = render_cdf("x", &[]);
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn long_cdf_is_downsampled() {
        let values: Vec<usize> = (0..500).collect();
        let s = render_cdf("v", &values);
        assert!(s.lines().count() <= 24);
    }
}
