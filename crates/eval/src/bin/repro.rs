//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list              list available experiments
//! repro table2            run one experiment
//! repro all               run everything (paper order)
//! repro all --seed 42     fixed seed (default 7)
//! repro all --out results # additionally write <dir>/<id>.txt per experiment
//! ```

use smash_eval::experiments::{all_experiments, find};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 7u64;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().unwrap_or_default();
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seed value: {v}");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out_dir = Some(std::path::PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                })));
            }
            other => targets.push(other.to_string()),
        }
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    if targets.is_empty() || targets[0] == "list" {
        println!("available experiments (run `repro <id>` or `repro all`):\n");
        for e in all_experiments() {
            println!("  {:8}  {}", e.id, e.title);
            println!("  {:8}  paper: {}", "", e.paper);
        }
        return;
    }
    let to_run: Vec<_> = if targets.iter().any(|t| t == "all") {
        all_experiments()
    } else {
        targets
            .iter()
            .map(|t| {
                find(t).unwrap_or_else(|| {
                    eprintln!("unknown experiment `{t}` — try `repro list`");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    for e in to_run {
        // lint:allow(wallclock): the repro harness reports wall time by design.
        let started = std::time::Instant::now();
        let out = (e.run)(seed);
        println!("================================================================");
        println!(
            "{} (seed {seed}, {:.1}s)",
            e.title,
            started.elapsed().as_secs_f64()
        );
        println!("================================================================");
        println!("{out}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.txt", e.id));
            if let Err(err) = std::fs::write(&path, &out) {
                eprintln!("cannot write {}: {err}", path.display());
                std::process::exit(1);
            }
        }
    }
}
