//! Shared machinery: run the pipeline over a scenario and judge the
//! output against the simulated label sources.

use smash_core::{Smash, SmashConfig, SmashReport};
use smash_groundtruth::{CampaignBreakdown, JudgedCampaign, ServerBreakdown, VerdictEngine};
use smash_synth::ScenarioData;

/// One day run: pipeline report plus judged campaigns, split by the
/// paper's client-count regimes.
#[derive(Debug)]
pub struct DayRun {
    /// The pipeline output.
    pub report: SmashReport,
    /// Judged multi-client campaigns (Table II/III material).
    pub multi: Vec<JudgedCampaign>,
    /// Judged single-client campaigns (Table XI/XII material).
    pub single: Vec<JudgedCampaign>,
}

impl DayRun {
    /// Campaign breakdown over the multi-client campaigns.
    pub fn campaign_breakdown(&self) -> CampaignBreakdown {
        CampaignBreakdown::from_judged(&self.multi)
    }

    /// Server breakdown over the multi-client campaigns.
    pub fn server_breakdown(&self) -> ServerBreakdown {
        ServerBreakdown::from_judged(&self.multi)
    }

    /// Campaign breakdown over the single-client campaigns.
    pub fn single_campaign_breakdown(&self) -> CampaignBreakdown {
        CampaignBreakdown::from_judged(&self.single)
    }

    /// Server breakdown over the single-client campaigns.
    pub fn single_server_breakdown(&self) -> ServerBreakdown {
        ServerBreakdown::from_judged(&self.single)
    }
}

/// Runs SMASH over one generated day.
pub fn run_smash(data: &ScenarioData, config: SmashConfig) -> SmashReport {
    Smash::new(config).run(&data.dataset, &data.whois)
}

/// Judges a report's campaigns against the day's label sources.
pub fn judge_report(
    data: &ScenarioData,
    report: &SmashReport,
) -> (Vec<JudgedCampaign>, Vec<JudgedCampaign>) {
    let engine = VerdictEngine::new(
        &data.dataset,
        &data.ids2012,
        &data.ids2013,
        &data.blacklists,
    )
    .with_truth(&data.truth);
    let mut multi = Vec::new();
    let mut single = Vec::new();
    for c in &report.campaigns {
        let judged = engine.judge(&c.servers);
        if c.single_client {
            single.push(judged);
        } else {
            multi.push(judged);
        }
    }
    (multi, single)
}

/// Runs and judges in one step.
pub fn run_day(data: &ScenarioData, config: SmashConfig) -> DayRun {
    let report = run_smash(data, config);
    let (multi, single) = judge_report(data, &report);
    DayRun {
        report,
        multi,
        single,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_synth::Scenario;

    #[test]
    fn small_day_round_trip() {
        let data = Scenario::small_day(3).generate();
        let run = run_day(&data, SmashConfig::default());
        assert!(!run.report.campaigns.is_empty());
        let cb = run.campaign_breakdown();
        assert_eq!(cb.smash, run.multi.len());
        let sb = run.server_breakdown();
        assert_eq!(
            sb.smash,
            run.multi.iter().map(|j| j.servers.len()).sum::<usize>()
        );
    }

    #[test]
    fn judgments_partition_campaigns() {
        let data = Scenario::small_day(5).generate();
        let run = run_day(&data, SmashConfig::default());
        assert_eq!(
            run.multi.len() + run.single.len(),
            run.report.campaigns.len()
        );
    }
}
