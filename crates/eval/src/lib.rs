//! Experiment harness regenerating every table and figure of the SMASH
//! paper's evaluation (§V and the appendices).
//!
//! Each experiment is a pure function of a seed: it generates the
//! matching synthetic scenario, runs the pipeline, judges the output
//! against the simulated IDS/blacklists, and renders the same rows or
//! series the paper reports. The `repro` binary drives them:
//!
//! ```text
//! repro list          # enumerate experiments
//! repro table2        # regenerate Table II
//! repro all --seed 7  # everything, fixed seed
//! ```
//!
//! Absolute numbers differ from the paper (its substrate was nine days of
//! real ISP traffic; ours is a seeded simulator at ~1/20 scale) — the
//! *shapes* are what the harness reproduces: who wins, what decreases
//! with the threshold, which dimension dominates.
//!
//! The experiment-to-paper mapping: Table I is the trace statistics,
//! Table II/III the campaign and server confirmation breakdowns (§V-A
//! taxonomy), Fig. 7 sweeps the eq. 9 suspiciousness threshold, and
//! Fig. 8 the per-dimension ablation; the extras (`baseline`,
//! `extensions`, `ablation`, `stability`, `shapes`) quantify the §II
//! per-server-reputation argument and the §VI extension dimensions.
//! `EXPERIMENTS.md` at the repo root holds the paper-vs-measured
//! discussion for every row.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use experiments::{all_experiments, Experiment};
pub use harness::{judge_report, run_smash, DayRun};
pub use table::TextTable;
