//! Graph and subgroup metrics used by the SMASH correlation stage.

use crate::graph::{Graph, NodeId};

/// Density of the node subset `members` within `graph`, as defined in the
/// paper's eq. (9) weights: `2·|e| / (|v|·(|v|−1))` where `|e|` is the
/// number of edges with both endpoints in the group.
///
/// A group of fewer than two nodes has density `0`. Self-loops are not
/// counted. The result lies in `[0, 1]` for simple graphs.
///
/// # Example
///
/// ```
/// use smash_graph::{GraphBuilder, density};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1, 1.0);
/// b.add_edge(1, 2, 1.0);
/// b.add_edge(0, 2, 1.0);
/// b.ensure_node(3);
/// let g = b.build();
/// assert_eq!(density(&g, &[0, 1, 2]), 1.0); // triangle
/// assert_eq!(density(&g, &[0, 1, 3]), 1.0 / 3.0);
/// ```
pub fn density(graph: &Graph, members: &[NodeId]) -> f64 {
    let v = members.len();
    if v < 2 {
        return 0.0;
    }
    let set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
    let mut edges = 0usize;
    for &u in members {
        for &(n, _) in graph.neighbors(u) {
            if n > u && set.contains(&n) {
                edges += 1;
            }
        }
    }
    (2.0 * edges as f64) / (v as f64 * (v as f64 - 1.0))
}

/// Average weighted degree of the graph. Empty graphs yield `0`.
pub fn mean_degree(graph: &Graph) -> f64 {
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|u| graph.degree(u as NodeId)).sum::<f64>() / n as f64
}

/// Total edge weight with both endpoints inside `members` (self-loops
/// excluded).
pub fn internal_weight(graph: &Graph, members: &[NodeId]) -> f64 {
    let set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
    let mut w = 0.0;
    for &u in members {
        for &(n, ew) in graph.neighbors(u) {
            if n > u && set.contains(&n) {
                w += ew;
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn density_of_small_groups_is_zero() {
        let g = GraphBuilder::with_nodes(3).build();
        assert_eq!(density(&g, &[]), 0.0);
        assert_eq!(density(&g, &[0]), 0.0);
    }

    #[test]
    fn density_of_disconnected_pair_is_zero() {
        let g = GraphBuilder::with_nodes(2).build();
        assert_eq!(density(&g, &[0, 1]), 0.0);
    }

    #[test]
    fn density_of_connected_pair_is_one() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.3);
        assert_eq!(density(&b.build(), &[0, 1]), 1.0);
    }

    #[test]
    fn self_loops_do_not_inflate_density() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 5.0);
        b.add_edge(0, 1, 1.0);
        assert_eq!(density(&b.build(), &[0, 1]), 1.0);
    }

    #[test]
    fn mean_degree_counts_weights() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 2.0);
        assert!((mean_degree(&b.build()) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn internal_weight_ignores_outside_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 2, 7.0);
        let g = b.build();
        assert_eq!(internal_weight(&g, &[0, 1]), 2.0);
    }
}
