//! Graphviz DOT export for similarity graphs and their communities.

use crate::graph::{Graph, NodeId};
use crate::partition::Partition;

/// Options for [`to_dot`].
pub struct DotOptions<'a> {
    /// Optional node labels (defaults to the node id).
    pub label: Option<&'a dyn Fn(NodeId) -> String>,
    /// Optional partition: nodes are colored per community.
    pub partition: Option<&'a Partition>,
    /// Skip isolated nodes (default true — similarity graphs are sparse
    /// and the isolated majority would drown the plot).
    pub skip_isolated: bool,
}

impl Default for DotOptions<'_> {
    fn default() -> Self {
        Self {
            label: None,
            partition: None,
            skip_isolated: true,
        }
    }
}

const PALETTE: &[&str] = &[
    "#e6194b", "#3cb44b", "#ffe119", "#4363d8", "#f58231", "#911eb4", "#46f0f0", "#f032e6",
    "#bcf60c", "#fabebe", "#008080", "#e6beff", "#9a6324", "#fffac8", "#800000", "#aaffc3",
];

/// Renders `graph` as an undirected Graphviz document.
///
/// Edge thickness scales with weight; with a partition, nodes are filled
/// by community color (palette cycles after 16 communities).
///
/// # Example
///
/// ```
/// use smash_graph::{GraphBuilder, dot::{to_dot, DotOptions}};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1, 0.8);
/// let dot = to_dot(&b.build(), &DotOptions::default());
/// assert!(dot.starts_with("graph"));
/// assert!(dot.contains("0 -- 1"));
/// ```
pub fn to_dot(graph: &Graph, opts: &DotOptions<'_>) -> String {
    let mut out = String::from("graph ash {\n  layout=neato;\n  overlap=false;\n  node [shape=circle, style=filled, fillcolor=\"#dddddd\"];\n");
    for u in 0..graph.node_count() as NodeId {
        if opts.skip_isolated && graph.neighbors(u).is_empty() {
            continue;
        }
        let label = opts.label.map(|f| f(u)).unwrap_or_else(|| u.to_string());
        let color = opts
            .partition
            .map(|p| PALETTE[p.community_of(u) as usize % PALETTE.len()])
            .unwrap_or("#dddddd");
        out.push_str(&format!(
            "  {u} [label=\"{}\", fillcolor=\"{color}\"];\n",
            label.replace('"', "'")
        ));
    }
    for (u, v, w) in graph.edges() {
        if u == v {
            continue;
        }
        out.push_str(&format!(
            "  {u} -- {v} [penwidth={:.2}];\n",
            (0.5 + 3.0 * w).min(4.0)
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::louvain::Louvain;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 0.5);
        b.ensure_node(5);
        b.build()
    }

    #[test]
    fn isolated_nodes_skipped_by_default() {
        let dot = to_dot(&sample(), &DotOptions::default());
        assert!(!dot.contains("  5 ["));
        assert!(dot.contains("  0 ["));
    }

    #[test]
    fn isolated_nodes_kept_on_request() {
        let opts = DotOptions {
            skip_isolated: false,
            ..DotOptions::default()
        };
        let dot = to_dot(&sample(), &opts);
        assert!(dot.contains("  5 ["));
    }

    #[test]
    fn labels_and_colors_applied() {
        let g = sample();
        let p = Louvain::new().run(&g);
        let label = |u: u32| format!("srv-{u}");
        let opts = DotOptions {
            label: Some(&label),
            partition: Some(&p),
            skip_isolated: true,
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("srv-0"));
        assert!(dot.contains("fillcolor=\"#"));
    }

    #[test]
    fn edge_weights_scale_penwidth() {
        let dot = to_dot(&sample(), &DotOptions::default());
        assert!(dot.contains("0 -- 1 [penwidth=3.50]"));
        assert!(dot.contains("1 -- 2 [penwidth=2.00]"));
    }

    #[test]
    fn quotes_in_labels_are_sanitized() {
        let g = sample();
        let label = |_: u32| "a\"b".to_string();
        let opts = DotOptions {
            label: Some(&label),
            partition: None,
            skip_isolated: true,
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("a'b"));
    }
}
