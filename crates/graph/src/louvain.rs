//! Louvain community detection (Blondel et al. 2008).
//!
//! This is the clustering algorithm the SMASH paper uses to extract
//! Associated Server Herds from each per-dimension similarity graph:
//! it greedily maximizes [modularity](mod@crate::modularity) through repeated
//! local-move passes followed by graph aggregation.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::modularity::modularity;
use crate::partition::Partition;
use smash_support::governor::CancelToken;
use smash_support::rng::{DetRng, SeedableRng, SliceRandom};

/// How many local moves run between cancellation polls: frequent enough
/// that a deadline stops a huge level promptly, rare enough that the
/// atomic load never shows up in a profile.
const CANCEL_POLL_STRIDE: usize = 1024;

/// Configurable Louvain runner.
///
/// Deterministic for a fixed seed: node visit order inside each local-move
/// pass is shuffled by a seeded SplitMix64 RNG.
///
/// # Example
///
/// ```
/// use smash_graph::{GraphBuilder, Louvain, modularity};
///
/// let mut b = GraphBuilder::new();
/// for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
///     b.add_edge(u, v, 1.0);
/// }
/// b.add_edge(2, 3, 0.05);
/// let g = b.build();
/// let p = Louvain::new().with_seed(7).run(&g);
/// assert_eq!(p.community_count(), 2);
/// assert!(modularity(&g, &p) > 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct Louvain {
    seed: u64,
    min_gain: f64,
    max_levels: usize,
    max_passes: usize,
    cancel: Option<CancelToken>,
}

impl Default for Louvain {
    fn default() -> Self {
        Self {
            seed: 0,
            min_gain: 1e-9,
            max_levels: 32,
            max_passes: 64,
            cancel: None,
        }
    }
}

impl Louvain {
    /// Creates a runner with default parameters (seed 0, gain ε = 1e-9).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the RNG seed controlling node visit order.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the minimum modularity gain required to keep iterating.
    ///
    /// # Panics
    ///
    /// Panics if `min_gain` is negative or not finite.
    pub fn with_min_gain(mut self, min_gain: f64) -> Self {
        assert!(
            min_gain.is_finite() && min_gain >= 0.0,
            "min_gain must be a non-negative finite value"
        );
        self.min_gain = min_gain;
        self
    }

    /// Caps the number of aggregation levels (default 32).
    pub fn with_max_levels(mut self, max_levels: usize) -> Self {
        self.max_levels = max_levels.max(1);
        self
    }

    /// Attaches a cooperative cancellation token: the runner polls it at
    /// every aggregation level, every local-move pass, and every
    /// `CANCEL_POLL_STRIDE` node moves, and unwinds (via
    /// [`CancelToken::bail`]) once it is cancelled — so a deadline set by
    /// the resource governor stops mining mid-level instead of after it.
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Runs Louvain on `graph` and returns the final partition over the
    /// *original* nodes.
    pub fn run(&self, graph: &Graph) -> Partition {
        self.run_with_stats(graph).0
    }

    /// [`run`](Self::run), also reporting how hard the optimization
    /// worked: aggregation levels, total local-move passes, and the final
    /// partition's modularity — the numbers behind the pipeline's
    /// per-dimension `louvain/*` metrics.
    pub fn run_with_stats(&self, graph: &Graph) -> (Partition, LouvainStats) {
        let n = graph.node_count();
        if n == 0 {
            return (
                Partition::from_assignment(vec![]),
                LouvainStats {
                    levels: 0,
                    passes: 0,
                    modularity: 0.0,
                },
            );
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        // node -> community over original nodes, refined level by level.
        let mut membership: Vec<u32> = (0..n as u32).collect();
        let mut level_graph = graph.clone();
        let mut stats = LouvainStats {
            levels: 0,
            passes: 0,
            modularity: 0.0,
        };
        for _level in 0..self.max_levels {
            if let Some(t) = &self.cancel {
                t.bail();
            }
            let (local, improved, passes) = self.one_level(&level_graph, &mut rng);
            stats.passes += passes;
            if !improved {
                break;
            }
            stats.levels += 1;
            let local = Partition::from_assignment(local);
            // Compose: original node -> old level community -> new community.
            for m in membership.iter_mut() {
                *m = local.community_of(*m);
            }
            if local.community_count() == level_graph.node_count() {
                break;
            }
            level_graph = aggregate(&level_graph, &local);
        }
        let partition = Partition::from_assignment(membership);
        stats.modularity = modularity(graph, &partition);
        (partition, stats)
    }

    /// One level of local moves. Returns the raw assignment, whether any
    /// node changed community, and how many passes ran.
    fn one_level(&self, g: &Graph, rng: &mut DetRng) -> (Vec<u32>, bool, u32) {
        let n = g.node_count();
        let two_m = 2.0 * g.total_weight();
        let mut community: Vec<u32> = (0..n as u32).collect();
        if two_m <= 0.0 {
            return (community, false, 0);
        }
        // tot[c]: sum of degrees of nodes in community c.
        let mut tot: Vec<f64> = (0..n).map(|u| g.degree(u as NodeId)).collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut improved_any = false;
        // Scratch: weight from the current node to each neighboring community.
        let mut neigh_weight: Vec<f64> = vec![0.0; n];
        let mut neigh_comms: Vec<u32> = Vec::new();
        let mut passes = 0u32;
        let mut moves_since_poll = 0usize;
        // All community ids stay < n (they start as node ids and only ever
        // take values of existing communities), so every `[..]` below is in
        // bounds by construction; the allows record that invariant.
        for _pass in 0..self.max_passes {
            passes += 1;
            if let Some(t) = &self.cancel {
                t.bail();
            }
            let mut moved = 0usize;
            for &u in &order {
                if let Some(t) = &self.cancel {
                    moves_since_poll += 1;
                    if moves_since_poll >= CANCEL_POLL_STRIDE {
                        moves_since_poll = 0;
                        t.bail();
                    }
                }
                let cu = community[u]; // lint:allow(index): u < n from `order`
                let ku = g.degree(u as NodeId);
                // Collect weights to neighboring communities; self-loops do
                // not affect move gain and are skipped.
                neigh_comms.clear();
                for &(v, w) in g.neighbors(u as NodeId) {
                    if v as usize == u {
                        continue;
                    }
                    let cv = community[v as usize]; // lint:allow(index): graph neighbor ids are < n
                    if neigh_weight[cv as usize] == 0.0 {
                        // lint:allow(index): community ids are < n
                        neigh_comms.push(cv);
                    }
                    neigh_weight[cv as usize] += w; // lint:allow(index): community ids are < n
                }
                // Remove u from its community.
                tot[cu as usize] -= ku; // lint:allow(index): community ids are < n
                let w_to_own = neigh_weight[cu as usize]; // lint:allow(index): community ids are < n
                                                          // Gain of joining community c: w(u,c) - ku * tot_c / 2m.
                let mut best_c = cu;
                let mut best_gain = w_to_own - ku * tot[cu as usize] / two_m; // lint:allow(index): community ids are < n
                for &c in &neigh_comms {
                    if c == cu {
                        continue;
                    }
                    let gain = neigh_weight[c as usize] - ku * tot[c as usize] / two_m; // lint:allow(index): community ids are < n
                                                                                        // Deterministic tie-break: prefer the smaller community id.
                    let better = gain > best_gain + self.min_gain
                        || ((gain - best_gain).abs() <= self.min_gain && c < best_c);
                    if better {
                        best_gain = best_gain.max(gain);
                        best_c = c;
                    }
                }
                tot[best_c as usize] += ku; // lint:allow(index): community ids are < n
                if best_c != cu {
                    community[u] = best_c; // lint:allow(index): u < n from `order`
                    moved += 1;
                    improved_any = true;
                }
                for &c in &neigh_comms {
                    neigh_weight[c as usize] = 0.0; // lint:allow(index): community ids are < n
                }
            }
            if moved == 0 {
                break;
            }
        }
        (community, improved_any, passes)
    }
}

/// How hard one [`Louvain`] run worked, from
/// [`run_with_stats`](Louvain::run_with_stats).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LouvainStats {
    /// Aggregation levels that improved the partition.
    pub levels: u32,
    /// Total local-move passes across all levels.
    pub passes: u32,
    /// Modularity of the final partition over the original graph.
    pub modularity: f64,
}

/// Builds the aggregated graph of a partition: one node per community,
/// intra-community weight becomes a self-loop, inter-community weights sum
/// into single edges.
fn aggregate(g: &Graph, p: &Partition) -> Graph {
    let mut b = GraphBuilder::with_nodes(p.community_count());
    for (u, v, w) in g.edges() {
        let cu = p.community_of(u);
        let cv = p.community_of(v);
        b.add_edge(cu, cv, w);
    }
    b.build()
}

/// Convenience: runs Louvain with default parameters and returns both the
/// partition and its modularity.
pub fn louvain_with_quality(graph: &Graph) -> (Partition, f64) {
    let p = Louvain::new().run(graph);
    let q = modularity(graph, &p);
    (p, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_chain(cliques: usize, size: usize, bridge_w: f64) -> Graph {
        let mut b = GraphBuilder::new();
        for c in 0..cliques {
            let base = (c * size) as NodeId;
            for i in 0..size {
                for j in (i + 1)..size {
                    b.add_edge(base + i as NodeId, base + j as NodeId, 1.0);
                }
            }
            if c + 1 < cliques {
                b.add_edge(base + (size - 1) as NodeId, base + size as NodeId, bridge_w);
            }
        }
        b.build()
    }

    #[test]
    fn finds_cliques() {
        let g = clique_chain(4, 5, 0.1);
        let p = Louvain::new().run(&g);
        assert_eq!(p.community_count(), 4);
        for c in 0..4u32 {
            let base = c * 5;
            for i in 1..5 {
                assert_eq!(p.community_of(base), p.community_of(base + i));
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let p = Louvain::new().run(&g);
        assert_eq!(p.community_count(), 0);
    }

    #[test]
    fn no_edges_all_singletons() {
        let mut b = GraphBuilder::new();
        b.ensure_node(4);
        let g = b.build();
        let p = Louvain::new().run(&g);
        assert_eq!(p.community_count(), 5);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = clique_chain(3, 4, 0.2);
        let p1 = Louvain::new().with_seed(42).run(&g);
        let p2 = Louvain::new().with_seed(42).run(&g);
        assert_eq!(p1, p2);
    }

    #[test]
    fn improves_over_singletons() {
        let g = clique_chain(3, 6, 0.1);
        let (p, q) = louvain_with_quality(&g);
        let q0 = modularity(&g, &Partition::singletons(g.node_count()));
        assert!(q > q0, "q = {q}, q0 = {q0}");
        assert!(p.community_count() < g.node_count());
    }

    #[test]
    fn single_edge_pair_merges() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let p = Louvain::new().run(&g);
        assert_eq!(p.community_of(0), p.community_of(1));
    }

    #[test]
    fn disconnected_components_stay_separate() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let p = Louvain::new().run(&g);
        assert_ne!(p.community_of(0), p.community_of(2));
        assert_eq!(p.community_count(), 2);
    }

    #[test]
    fn aggregation_preserves_total_weight() {
        let g = clique_chain(2, 4, 0.5);
        let p = Partition::from_assignment(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let agg = aggregate(&g, &p);
        assert!((agg.total_weight() - g.total_weight()).abs() < 1e-9);
        assert_eq!(agg.node_count(), 2);
    }

    #[test]
    fn cancelled_token_unwinds_out_of_the_run() {
        let g = clique_chain(6, 6, 0.2);
        let token = CancelToken::new();
        token.cancel("governor: test cancellation");
        let runner = Louvain::new().with_cancel(&token);
        let err = smash_support::par::run_isolated(|| runner.run(&g)).unwrap_err();
        assert!(err.contains("governor: test cancellation"), "got: {err}");
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let g = clique_chain(4, 5, 0.1);
        let token = CancelToken::new();
        let p1 = Louvain::new().with_seed(3).run(&g);
        let p2 = Louvain::new().with_seed(3).with_cancel(&token).run(&g);
        assert_eq!(p1, p2);
    }

    #[test]
    fn star_graph_collapses() {
        let mut b = GraphBuilder::new();
        for leaf in 1..=6 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let p = Louvain::new().run(&g);
        // A star has no modularity-positive split that isolates the hub's
        // leaves individually; every leaf ends with the hub or a sibling.
        assert!(p.community_count() < 7);
    }
}
