//! Sparse pairwise co-occurrence counting.
//!
//! The SMASH paper observes that pairwise server similarity is *O(N²)* and
//! points at sparse matrix multiplication as the remedy. This module is
//! that remedy: features (clients, IPs, URI-file signatures, whois fields)
//! are turned into *posting lists* of the items that exhibit them, and only
//! item pairs that co-occur in at least one posting list are ever counted.
//! The result — `|features(i) ∩ features(j)|` for every co-occurring pair —
//! is exactly the sparse product `AᵀA` restricted to its non-zero
//! off-diagonal entries.

use smash_support::par;
use std::collections::HashMap;

/// Accumulates posting lists and computes pairwise co-occurrence counts.
///
/// # Example
///
/// ```
/// use smash_graph::CooccurrenceCounter;
///
/// let mut c = CooccurrenceCounter::new();
/// c.add_posting([1, 2, 3]); // feature A is shared by items 1, 2, 3
/// c.add_posting([2, 3]);    // feature B is shared by items 2, 3
/// let counts = c.counts();
/// assert_eq!(counts[&(2, 3)], 2);
/// assert_eq!(counts[&(1, 2)], 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CooccurrenceCounter {
    postings: Vec<Vec<u32>>,
    max_posting_len: Option<usize>,
    skipped: usize,
}

impl CooccurrenceCounter {
    /// Creates an empty counter with no posting-length cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps posting-list length: features shared by more than `cap` items
    /// are skipped entirely.
    ///
    /// This mirrors the paper's IDF popularity filter — a feature common to
    /// very many items (a hyper-popular client or IP) carries no
    /// discriminative signal but dominates the pair count quadratically.
    pub fn with_max_posting_len(mut self, cap: usize) -> Self {
        self.max_posting_len = Some(cap);
        self
    }

    /// Adds one feature's posting list (the set of items exhibiting the
    /// feature). Duplicates within the list are removed.
    pub fn add_posting<I: IntoIterator<Item = u32>>(&mut self, items: I) {
        let mut v: Vec<u32> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        if v.len() < 2 {
            return; // no pairs to contribute
        }
        if let Some(cap) = self.max_posting_len {
            if v.len() > cap {
                self.skipped += 1;
                return;
            }
        }
        self.postings.push(v);
    }

    /// Number of posting lists retained so far.
    pub fn posting_count(&self) -> usize {
        self.postings.len()
    }

    /// Number of posting lists dropped by the length cap.
    pub fn skipped_count(&self) -> usize {
        self.skipped
    }

    /// Computes `|shared features|` for every item pair that co-occurs in at
    /// least one posting list. Keys are `(min, max)` item-id pairs.
    pub fn counts(&self) -> HashMap<(u32, u32), u32> {
        let mut out = HashMap::new();
        for posting in &self.postings {
            accumulate(posting, &mut out);
        }
        out
    }

    /// Parallel variant of [`counts`](Self::counts): posting lists are
    /// sharded across threads and the per-thread maps merged. The result is
    /// identical to the sequential version.
    pub fn counts_parallel(&self) -> HashMap<(u32, u32), u32> {
        if self.postings.len() < 64 {
            return self.counts();
        }
        let shards = par::current_num_threads().max(1);
        let chunk = self.postings.len().div_ceil(shards);
        par::par_fold_chunks(
            &self.postings,
            chunk,
            HashMap::new,
            |mut m, posting| {
                accumulate(posting, &mut m);
                m
            },
            |a, b| {
                if a.len() < b.len() {
                    return merge(b, a);
                }
                merge(a, b)
            },
        )
    }
}

fn accumulate(posting: &[u32], out: &mut HashMap<(u32, u32), u32>) {
    for (idx, &a) in posting.iter().enumerate() {
        for &b in &posting[idx + 1..] {
            *out.entry((a, b)).or_insert(0) += 1;
        }
    }
}

fn merge(
    mut big: HashMap<(u32, u32), u32>,
    small: HashMap<(u32, u32), u32>,
) -> HashMap<(u32, u32), u32> {
    // lint:allow(hash-iter): integer `+=` merge is commutative; order cannot matter.
    for (k, v) in small {
        *big.entry(k).or_insert(0) += v;
    }
    big
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counter_yields_nothing() {
        assert!(CooccurrenceCounter::new().counts().is_empty());
    }

    #[test]
    fn singleton_postings_are_ignored() {
        let mut c = CooccurrenceCounter::new();
        c.add_posting([5]);
        c.add_posting([]);
        assert_eq!(c.posting_count(), 0);
        assert!(c.counts().is_empty());
    }

    #[test]
    fn duplicates_within_posting_collapse() {
        let mut c = CooccurrenceCounter::new();
        c.add_posting([1, 1, 2, 2]);
        assert_eq!(c.counts()[&(1, 2)], 1);
    }

    #[test]
    fn counts_accumulate_across_postings() {
        let mut c = CooccurrenceCounter::new();
        c.add_posting([1, 2]);
        c.add_posting([2, 1]);
        c.add_posting([1, 3]);
        let counts = c.counts();
        assert_eq!(counts[&(1, 2)], 2);
        assert_eq!(counts[&(1, 3)], 1);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn cap_drops_hot_features() {
        let mut c = CooccurrenceCounter::new().with_max_posting_len(3);
        c.add_posting(0..10);
        c.add_posting([1, 2]);
        assert_eq!(c.skipped_count(), 1);
        assert_eq!(c.posting_count(), 1);
        assert_eq!(c.counts().len(), 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut c = CooccurrenceCounter::new();
        // 200 postings so the parallel path actually engages.
        for i in 0..200u32 {
            c.add_posting([i % 17, (i * 7) % 17, (i * 3) % 17]);
        }
        assert_eq!(c.counts(), c.counts_parallel());
    }

    #[test]
    fn keys_are_ordered_pairs() {
        let mut c = CooccurrenceCounter::new();
        c.add_posting([9, 1]);
        let counts = c.counts();
        assert!(counts.contains_key(&(1, 9)));
        assert!(!counts.contains_key(&(9, 1)));
    }
}
