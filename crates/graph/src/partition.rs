//! Node-to-community assignments produced by community detection.

use crate::graph::NodeId;
use smash_support::impl_json_struct;
use smash_support::wire::{FromWire, Reader, ToWire, WireError};

/// An assignment of every node to exactly one community.
///
/// Community ids are dense (`0..community_count`) and deterministic: they
/// are renumbered in order of each community's smallest member node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    community_count: usize,
}

impl_json_struct!(Partition {
    assignment,
    community_count
});

// Checkpoint wire form: the assignment vector alone. Stored partitions
// are already densely renumbered, so rebuilding through
// `from_assignment` is the identity on them — and it revalidates the
// density invariant on anything a corrupted payload smuggles in.
impl ToWire for Partition {
    fn wire(&self, out: &mut Vec<u8>) {
        self.assignment.wire(out);
    }
}

impl FromWire for Partition {
    fn from_wire(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Partition::from_assignment(Vec::from_wire(r)?))
    }
}

impl Partition {
    /// Builds a partition from a raw per-node community label vector,
    /// renumbering labels densely and deterministically.
    pub fn from_assignment(raw: Vec<u32>) -> Self {
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(raw.len());
        for &label in &raw {
            let next = remap.len() as u32;
            let id = *remap.entry(label).or_insert(next);
            assignment.push(id);
        }
        let community_count = remap.len();
        Self {
            assignment,
            community_count,
        }
    }

    /// A partition that places every node in its own community.
    pub fn singletons(n: usize) -> Self {
        Self {
            assignment: (0..n as u32).collect(),
            community_count: n,
        }
    }

    /// Number of nodes covered by this partition.
    pub fn node_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.community_count
    }

    /// The community id of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn community_of(&self, u: NodeId) -> u32 {
        self.assignment[u as usize]
    }

    /// The raw assignment vector, indexed by node id.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Materializes each community as a sorted member list, indexed by
    /// community id.
    pub fn communities(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.community_count];
        for (u, &c) in self.assignment.iter().enumerate() {
            out[c as usize].push(u as NodeId);
        }
        out
    }

    /// Communities with at least `min_size` members, as sorted member lists.
    pub fn communities_min_size(&self, min_size: usize) -> Vec<Vec<NodeId>> {
        self.communities()
            .into_iter()
            .filter(|c| c.len() >= min_size)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumbering_is_dense_and_first_seen() {
        let p = Partition::from_assignment(vec![7, 7, 3, 7, 3, 9]);
        assert_eq!(p.assignment(), &[0, 0, 1, 0, 1, 2]);
        assert_eq!(p.community_count(), 3);
    }

    #[test]
    fn singletons_partition() {
        let p = Partition::singletons(3);
        assert_eq!(p.community_count(), 3);
        assert_eq!(p.communities(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn communities_materialize_sorted() {
        let p = Partition::from_assignment(vec![1, 0, 1, 0]);
        assert_eq!(p.communities(), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn min_size_filter() {
        let p = Partition::from_assignment(vec![0, 0, 1]);
        assert_eq!(p.communities_min_size(2), vec![vec![0, 1]]);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::from_assignment(vec![]);
        assert_eq!(p.node_count(), 0);
        assert_eq!(p.community_count(), 0);
        assert!(p.communities().is_empty());
    }
}
