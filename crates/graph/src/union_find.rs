//! Disjoint-set (union-find) with path compression and union by rank.

/// A disjoint-set forest over `0..len` elements.
///
/// Used for connected components and for merging ASHs during campaign
/// inference.
///
/// # Example
///
/// ```
/// use smash_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(
            len <= u32::MAX as usize,
            "UnionFind supports at most u32::MAX elements"
        );
        Self {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
            sets: len,
        }
    }

    /// Number of elements in the forest.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the forest has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len`.
    pub fn find(&mut self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element out of range for UnionFind");
        let mut root = x as u32;
        while let Some(&p) = self.parent.get(root as usize) {
            if p == root {
                break;
            }
            root = p;
        }
        // Path compression: point every node on the walked chain at the
        // root. Re-walking stops at the root itself (`parent[root] == root`).
        let mut cur = x as u32;
        while cur != root {
            match self.parent.get_mut(cur as usize) {
                Some(p) => cur = std::mem::replace(p, root),
                None => break,
            }
        }
        root as usize
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if a merge happened (they were in different sets).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        let (ra, rb) = (ra as u32, rb as u32);
        let rank_of = |rank: &[u8], r: u32| rank.get(r as usize).copied().unwrap_or(0);
        match rank_of(&self.rank, ra).cmp(&rank_of(&self.rank, rb)) {
            std::cmp::Ordering::Less => self.set_parent(ra, rb),
            std::cmp::Ordering::Greater => self.set_parent(rb, ra),
            std::cmp::Ordering::Equal => {
                self.set_parent(rb, ra);
                if let Some(r) = self.rank.get_mut(ra as usize) {
                    *r += 1;
                }
            }
        }
        true
    }

    /// Points `child`'s parent link at `parent` (both are roots returned
    /// by [`Self::find`], hence in range).
    fn set_parent(&mut self, child: u32, parent: u32) {
        if let Some(p) = self.parent.get_mut(child as usize) {
            *p = parent;
        }
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all elements by their set representative.
    ///
    /// The returned groups are sorted by their smallest member and each
    /// group's members are in ascending order, so the output is
    /// deterministic.
    pub fn into_groups(mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g.first().copied().unwrap_or(usize::MAX));
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_reduces_set_count() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(4, 5);
        assert!(uf.same(0, 2));
        assert!(uf.same(4, 5));
        assert!(!uf.same(2, 4));
    }

    #[test]
    fn groups_are_deterministic() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(1, 0);
        uf.union(2, 4);
        let groups = uf.into_groups();
        assert_eq!(groups, vec![vec![0, 1], vec![2, 4], vec![3, 5]]);
    }

    #[test]
    fn empty_forest() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        assert!(uf.into_groups().is_empty());
    }
}
