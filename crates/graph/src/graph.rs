//! Weighted undirected graphs with compact node ids.

use smash_support::impl_json_struct;
use smash_support::wire::{FromWire, Reader, ToWire, WireError};
use std::collections::HashMap;

/// Compact node identifier used throughout the graph substrate.
///
/// Callers map their own entities (server ids, domains, …) to dense
/// `NodeId`s before building a graph.
pub type NodeId = u32;

/// A weighted, undirected graph stored as an adjacency list.
///
/// Self-loops are allowed (they matter for Louvain's aggregated graphs);
/// parallel edges are merged at build time by summing their weights.
///
/// # Example
///
/// ```
/// use smash_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1, 2.0);
/// b.add_edge(1, 2, 0.5);
/// let g = b.build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert!((g.degree(1) - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// adj[u] = sorted list of (neighbor, weight); self-loop stored once.
    adj: Vec<Vec<(NodeId, f64)>>,
    /// Weighted degree per node (self-loop counted twice, the Louvain convention).
    degree: Vec<f64>,
    /// Sum of all edge weights (each undirected edge once; self-loops once).
    total_weight: f64,
    edge_count: usize,
}

impl_json_struct!(Graph {
    adj,
    degree,
    total_weight,
    edge_count
});

// Checkpoint wire form: node count + each undirected edge once. The
// derived state (mirrored adjacency, degrees, total weight) is rebuilt
// through `GraphBuilder`, whose sorted accumulation makes the decoded
// graph bit-identical to the one originally built from the same edges.
impl ToWire for Graph {
    fn wire(&self, out: &mut Vec<u8>) {
        (self.adj.len() as u64).wire(out);
        (self.edge_count as u64).wire(out);
        // lint:allow(hash-iter): `edges()` walks the sorted Vec adjacency, not a hash map
        for (u, v, w) in self.edges() {
            u.wire(out);
            v.wire(out);
            w.wire(out);
        }
    }
}

impl FromWire for Graph {
    fn from_wire(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = usize::from_wire(r)?;
        let m = usize::from_wire(r)?;
        // Each edge consumes 16 bytes; reject an impossible count before
        // looping (a corrupted header must not drive a huge allocation).
        if m > r.remaining() / 16 {
            return Err(WireError(format!(
                "edge count {m} exceeds payload ({} bytes remain)",
                r.remaining()
            )));
        }
        let mut b = GraphBuilder::with_nodes(n);
        for _ in 0..m {
            let u = u32::from_wire(r)?;
            let v = u32::from_wire(r)?;
            let w = f64::from_wire(r)?;
            if (u as usize) >= n || (v as usize) >= n {
                return Err(WireError(format!("edge ({u}, {v}) outside {n} node(s)")));
            }
            if !w.is_finite() {
                return Err(WireError(format!("non-finite edge weight {w}")));
            }
            b.add_edge(u, v, w);
        }
        if b.edge_count() != m {
            return Err(WireError("duplicate edges in payload".to_owned()));
        }
        Ok(b.build())
    }
}

impl Graph {
    /// Number of nodes (including isolated ones).
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct undirected edges (self-loops count as one).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sum of all edge weights, counting each undirected edge once.
    ///
    /// This is the `m` in the modularity formula.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Weighted degree of `u`: sum of incident edge weights, with
    /// self-loops counted twice (the convention modularity expects).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> f64 {
        self.degree[u as usize] // lint:allow(index): documented `# Panics` contract for out-of-range ids
    }

    /// Neighbors of `u` with edge weights, in ascending neighbor order.
    ///
    /// A self-loop at `u` appears once as `(u, w)`; an out-of-range `u`
    /// has no neighbors.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, f64)] {
        self.adj.get(u as usize).map_or(&[], Vec::as_slice)
    }

    /// Weight of the edge `(u, v)`, or `None` if absent.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let row = self.adj.get(u as usize)?;
        row.binary_search_by_key(&v, |&(n, _)| n)
            .ok()
            .and_then(|i| row.get(i))
            .map(|&(_, w)| w)
    }

    /// Iterates over every undirected edge once as `(u, v, w)` with `u <= v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, row)| {
            let u = u as NodeId;
            row.iter()
                .filter(move |&&(v, _)| v >= u)
                .map(move |&(v, w)| (u, v, w))
        })
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }
}

/// Incremental builder for [`Graph`].
///
/// Nodes are created implicitly by the largest id mentioned; use
/// [`GraphBuilder::ensure_node`] to add isolated nodes. Duplicate edges are
/// merged by summing weights.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: HashMap<(NodeId, NodeId), f64>,
    max_node: Option<NodeId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `n` nodes (ids `0..n`).
    pub fn with_nodes(n: usize) -> Self {
        let mut b = Self::new();
        if n > 0 {
            b.ensure_node((n - 1) as NodeId);
        }
        b
    }

    /// Ensures node `u` exists even if it ends up with no edges.
    pub fn ensure_node(&mut self, u: NodeId) -> &mut Self {
        self.max_node = Some(self.max_node.map_or(u, |m| m.max(u)));
        self
    }

    /// Adds (or accumulates onto) the undirected edge `(u, v)`.
    ///
    /// `u == v` creates a self-loop. Weights must be finite.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> &mut Self {
        assert!(
            weight.is_finite(),
            "edge weight must be finite, got {weight}"
        );
        self.ensure_node(u);
        self.ensure_node(v);
        let key = if u <= v { (u, v) } else { (v, u) };
        *self.edges.entry(key).or_insert(0.0) += weight;
        self
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Retains only the `keep` heaviest edges, dropping the rest, and
    /// returns how many were dropped. Deterministic: edges are ranked
    /// by weight descending with `(u, v)` ascending breaking ties, so
    /// equal-weight edges always survive in the same order. Nodes are
    /// never removed — a thinned node just loses edges.
    pub fn thin_to(&mut self, keep: usize) -> usize {
        if self.edges.len() <= keep {
            return 0;
        }
        let mut order: Vec<((NodeId, NodeId), f64)> =
            self.edges.iter().map(|(&k, &w)| (k, w)).collect();
        order.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("edge weights are finite")
                .then(a.0.cmp(&b.0))
        });
        let dropped = order.len() - keep;
        self.edges = order.into_iter().take(keep).collect();
        dropped
    }

    /// Finalizes the graph.
    pub fn build(&self) -> Graph {
        // One directed half of an edge: append `(v, w)` to `u`'s row and
        // add `dw` to `u`'s weighted degree. `u <= max_node < n` by
        // construction, so the lookups cannot miss.
        fn add_half(
            adj: &mut [Vec<(NodeId, f64)>],
            degree: &mut [f64],
            u: NodeId,
            v: NodeId,
            w: f64,
            dw: f64,
        ) {
            if let Some(row) = adj.get_mut(u as usize) {
                row.push((v, w));
            }
            if let Some(d) = degree.get_mut(u as usize) {
                *d += dw;
            }
        }
        let n = self.max_node.map_or(0, |m| m as usize + 1);
        let mut adj: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
        let mut degree = vec![0.0; n];
        let mut total = 0.0;
        // Sort edges so the float accumulation into `degree`/`total` is
        // order-stable: float addition is not associative, and HashMap
        // iteration order must never reach a reported number.
        let mut edges: Vec<((NodeId, NodeId), f64)> =
            self.edges.iter().map(|(&k, &w)| (k, w)).collect();
        edges.sort_unstable_by_key(|e| e.0);
        for &((u, v), w) in &edges {
            if u == v {
                add_half(&mut adj, &mut degree, u, v, w, 2.0 * w);
            } else {
                add_half(&mut adj, &mut degree, u, v, w, w);
                add_half(&mut adj, &mut degree, v, u, w, w);
            }
            total += w;
        }
        for row in &mut adj {
            row.sort_unstable_by_key(|&(v, _)| v);
        }
        Graph {
            adj,
            degree,
            total_weight: total,
            edge_count: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn thin_to_keeps_heaviest_edges_deterministically() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.9);
        b.add_edge(1, 2, 0.1);
        b.add_edge(2, 3, 0.5);
        b.add_edge(0, 3, 0.5); // ties with (2,3); lower (u,v) survives first
        assert_eq!(b.thin_to(4), 0);
        assert_eq!(b.thin_to(2), 2);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(0.9));
        assert_eq!(g.edge_weight(0, 3), Some(0.5));
        assert_eq!(g.edge_weight(2, 3), None);
        assert_eq!(g.edge_weight(1, 2), None);
        // Nodes survive thinning even when all their edges are gone.
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn duplicate_edges_accumulate() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 2.0);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
        assert_eq!(g.edge_weight(1, 0), Some(3.0));
    }

    #[test]
    fn self_loop_degree_counts_twice() {
        let mut b = GraphBuilder::new();
        b.add_edge(2, 2, 1.5);
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.degree(2), 3.0);
        assert_eq!(g.total_weight(), 1.5);
        assert_eq!(g.neighbors(2), &[(2, 1.5)]);
    }

    #[test]
    fn isolated_nodes_exist() {
        let mut b = GraphBuilder::new();
        b.ensure_node(4);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert!(g.neighbors(4).is_empty());
        assert_eq!(g.degree(4), 0.0);
    }

    #[test]
    fn edges_iterator_visits_each_once() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 2, 0.5);
        let g = b.build();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(edges, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 2, 0.5)]);
        let sum: f64 = edges.iter().map(|e| e.2).sum();
        assert!((sum - g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 5, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(0, 9, 1.0);
        let g = b.build();
        let ns: Vec<NodeId> = g.neighbors(0).iter().map(|&(v, _)| v).collect();
        assert_eq!(ns, vec![2, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weight() {
        GraphBuilder::new().add_edge(0, 1, f64::NAN);
    }
}
