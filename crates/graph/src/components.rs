//! Connected components of a graph.

use crate::graph::Graph;
use crate::partition::Partition;
use crate::union_find::UnionFind;

/// Computes the connected components of `graph` as a [`Partition`].
///
/// Isolated nodes each form their own component. Edge weights are ignored
/// (any edge connects).
///
/// # Example
///
/// ```
/// use smash_graph::{GraphBuilder, connected_components};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1, 1.0);
/// b.add_edge(1, 2, 1.0);
/// b.ensure_node(3);
/// let p = connected_components(&b.build());
/// assert_eq!(p.community_count(), 2);
/// assert_eq!(p.community_of(0), p.community_of(2));
/// ```
pub fn connected_components(graph: &Graph) -> Partition {
    let n = graph.node_count();
    let mut uf = UnionFind::new(n);
    for (u, v, _) in graph.edges() {
        uf.union(u as usize, v as usize);
    }
    let assignment: Vec<u32> = (0..n).map(|u| uf.find(u) as u32).collect();
    Partition::from_assignment(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn empty_graph_has_no_components() {
        let p = connected_components(&GraphBuilder::new().build());
        assert_eq!(p.community_count(), 0);
    }

    #[test]
    fn chain_is_one_component() {
        let mut b = GraphBuilder::new();
        for i in 0..9 {
            b.add_edge(i, i + 1, 1.0);
        }
        let p = connected_components(&b.build());
        assert_eq!(p.community_count(), 1);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.ensure_node(5);
        let p = connected_components(&b.build());
        assert_eq!(p.community_count(), 5); // {0,1}, {2}, {3}, {4}, {5}
    }

    #[test]
    fn self_loop_does_not_connect_others() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.ensure_node(1);
        let p = connected_components(&b.build());
        assert_eq!(p.community_count(), 2);
    }
}
