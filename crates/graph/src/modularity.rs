//! Newman–Girvan modularity of a partition.

use crate::graph::Graph;
use crate::partition::Partition;

/// Computes the modularity `Q` of `partition` on `graph`.
///
/// `Q = Σ_c [ in_c / (2m) − (tot_c / (2m))² ]` where `in_c` is twice the
/// weight of intra-community edges (self-loops counted twice), `tot_c` is
/// the sum of weighted degrees in community `c`, and `m` is the total edge
/// weight. `Q` lies in `[-1, 1]`; an empty graph has modularity `0`.
///
/// # Panics
///
/// Panics if `partition.node_count() != graph.node_count()`.
///
/// # Example
///
/// ```
/// use smash_graph::{GraphBuilder, Partition, modularity};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1, 1.0);
/// b.add_edge(2, 3, 1.0);
/// let g = b.build();
/// let good = Partition::from_assignment(vec![0, 0, 1, 1]);
/// let bad = Partition::from_assignment(vec![0, 1, 0, 1]);
/// assert!(modularity(&g, &good) > modularity(&g, &bad));
/// ```
pub fn modularity(graph: &Graph, partition: &Partition) -> f64 {
    assert_eq!(
        partition.node_count(),
        graph.node_count(),
        "partition covers {} nodes but graph has {}",
        partition.node_count(),
        graph.node_count()
    );
    let m = graph.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let k = partition.community_count();
    let mut inside = vec![0.0; k]; // 2 * intra-community weight
    let mut total = vec![0.0; k]; // sum of degrees
    for (u, v, w) in graph.edges() {
        let cu = partition.community_of(u) as usize;
        let cv = partition.community_of(v) as usize;
        if cu == cv {
            inside[cu] += 2.0 * w;
        }
    }
    for u in 0..graph.node_count() {
        let c = partition.community_of(u as u32) as usize;
        total[c] += graph.degree(u as u32);
    }
    let two_m = 2.0 * m;
    (0..k)
        .map(|c| inside[c] / two_m - (total[c] / two_m).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn two_cliques() -> Graph {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 1.0);
        }
        b.add_edge(2, 3, 1.0);
        b.build()
    }

    #[test]
    fn natural_split_beats_single_community() {
        let g = two_cliques();
        let split = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1]);
        let lump = Partition::from_assignment(vec![0; 6]);
        assert!(modularity(&g, &split) > modularity(&g, &lump));
    }

    #[test]
    fn single_community_has_zero_modularity() {
        let g = two_cliques();
        let lump = Partition::from_assignment(vec![0; 6]);
        assert!(modularity(&g, &lump).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = GraphBuilder::new().build();
        let p = Partition::from_assignment(vec![]);
        assert_eq!(modularity(&g, &p), 0.0);
    }

    #[test]
    fn modularity_bounded() {
        let g = two_cliques();
        for assignment in [vec![0, 1, 2, 3, 4, 5], vec![0, 0, 1, 1, 2, 2]] {
            let q = modularity(&g, &Partition::from_assignment(assignment));
            assert!((-1.0..=1.0).contains(&q), "q = {q}");
        }
    }

    #[test]
    fn self_loops_count_as_intra() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let p = Partition::from_assignment(vec![0, 0]);
        // One community containing everything: Q = 1 - 1 = 0.
        assert!(modularity(&g, &p).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "partition covers")]
    fn mismatched_sizes_panic() {
        let g = two_cliques();
        modularity(&g, &Partition::from_assignment(vec![0, 0]));
    }
}
