//! Graph substrate for SMASH.
//!
//! This crate provides the graph machinery the SMASH paper relies on:
//!
//! * [`Graph`] — a weighted, undirected graph with compact `u32` node ids,
//!   built through [`GraphBuilder`].
//! * [`louvain`] — the Louvain community-detection algorithm
//!   (Blondel et al., *Fast unfolding of communities in large networks*,
//!   J. Stat. Mech. 2008), which the paper uses to extract Associated
//!   Server Herds (ASHs) from per-dimension similarity graphs.
//! * [`mod@modularity`] — the quality measure optimized by Louvain.
//! * [`components`] — connected components via [`UnionFind`].
//! * [`cooccurrence`] — an inverted-index sparse pairwise-similarity engine:
//!   the paper notes that naive pairwise similarity is *O(N²)* and that
//!   sparse matrix multiplication fixes it; we score only pairs that share
//!   at least one feature.
//!
//! # Example
//!
//! ```
//! use smash_graph::{GraphBuilder, louvain::Louvain};
//!
//! let mut b = GraphBuilder::new();
//! // two triangles joined by a weak bridge
//! for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     b.add_edge(u, v, 1.0);
//! }
//! b.add_edge(2, 3, 0.01);
//! let g = b.build();
//! let partition = Louvain::new().run(&g);
//! assert_eq!(partition.community_of(0), partition.community_of(1));
//! assert_ne!(partition.community_of(0), partition.community_of(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod cooccurrence;
pub mod dot;
pub mod graph;
pub mod louvain;
pub mod metrics;
pub mod modularity;
pub mod partition;
pub mod union_find;

pub use components::connected_components;
pub use cooccurrence::CooccurrenceCounter;
pub use graph::{Graph, GraphBuilder, NodeId};
pub use louvain::{Louvain, LouvainStats};
pub use metrics::density;
pub use modularity::modularity;
pub use partition::Partition;
pub use union_find::UnionFind;
