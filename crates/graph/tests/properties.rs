//! Property-based tests for the graph substrate invariants.

use smash_graph::{
    connected_components, density, modularity, CooccurrenceCounter, GraphBuilder, Louvain,
    Partition, UnionFind,
};
use smash_support::check::{check, Gen};

/// Generator: a random small edge list over up to `n` nodes.
fn edges(g: &mut Gen, n: u32, max_edges: usize) -> Vec<(u32, u32, f64)> {
    g.vec(0..max_edges, |g| {
        (g.range(0..n), g.range(0..n), g.range(0.01f64..10.0))
    })
}

#[test]
fn louvain_partition_covers_all_nodes() {
    check(
        |g| (edges(g, 30, 60), g.range(0u64..1000)),
        |(es, seed)| {
            let mut b = GraphBuilder::new();
            b.ensure_node(29);
            for (u, v, w) in es {
                b.add_edge(*u, *v, *w);
            }
            let g = b.build();
            let p = Louvain::new().with_seed(*seed).run(&g);
            assert_eq!(p.node_count(), g.node_count());
            // Every community id is within range and every community non-empty.
            let comms = p.communities();
            assert_eq!(comms.len(), p.community_count());
            assert!(comms.iter().all(|c| !c.is_empty()));
            let total: usize = comms.iter().map(|c| c.len()).sum();
            assert_eq!(total, g.node_count());
        },
    );
}

#[test]
fn louvain_never_beaten_by_singletons() {
    check(
        |g| edges(g, 25, 50),
        |es| {
            let mut b = GraphBuilder::new();
            b.ensure_node(24);
            for (u, v, w) in es {
                b.add_edge(*u, *v, *w);
            }
            let g = b.build();
            let p = Louvain::new().run(&g);
            let q = modularity(&g, &p);
            let q0 = modularity(&g, &Partition::singletons(g.node_count()));
            assert!(q >= q0 - 1e-9, "louvain q={q} < singleton q={q0}");
        },
    );
}

#[test]
fn louvain_communities_are_connected_subsets_of_components() {
    check(
        |g| edges(g, 20, 40),
        |es| {
            let mut b = GraphBuilder::new();
            b.ensure_node(19);
            for (u, v, w) in es {
                b.add_edge(*u, *v, *w);
            }
            let g = b.build();
            let p = Louvain::new().run(&g);
            let cc = connected_components(&g);
            // No Louvain community may straddle two connected components.
            for comm in p.communities() {
                let first = cc.community_of(comm[0]);
                for &node in &comm {
                    assert_eq!(cc.community_of(node), first);
                }
            }
        },
    );
}

#[test]
fn modularity_in_range() {
    check(
        |g| (edges(g, 20, 50), g.vec(20..=20, |g| g.range(0u32..5))),
        |(es, labels)| {
            let mut b = GraphBuilder::new();
            b.ensure_node(19);
            for (u, v, w) in es {
                b.add_edge(*u, *v, *w);
            }
            let g = b.build();
            let p = Partition::from_assignment(labels.clone());
            let q = modularity(&g, &p);
            assert!((-1.0..=1.0).contains(&q), "q = {q}");
        },
    );
}

#[test]
fn density_in_unit_range() {
    check(
        |g| (edges(g, 15, 30), g.vec(0..10, |g| g.range(0u32..15))),
        |(es, members)| {
            let mut b = GraphBuilder::new();
            b.ensure_node(14);
            for (u, v, w) in es {
                if u != v {
                    b.add_edge(*u, *v, *w);
                }
            }
            let g = b.build();
            let mut m = members.clone();
            m.sort_unstable();
            m.dedup();
            let d = density(&g, &m);
            assert!((0.0..=1.0).contains(&d), "d = {d}");
        },
    );
}

#[test]
fn union_find_equivalence_is_transitive() {
    check(
        |g| g.vec(0..30, |g| (g.range(0usize..20), g.range(0usize..20))),
        |pairs| {
            let mut uf = UnionFind::new(20);
            for (a, b) in pairs {
                uf.union(*a, *b);
            }
            let groups = uf.clone().into_groups();
            let total: usize = groups.iter().map(|g| g.len()).sum();
            assert_eq!(total, 20);
            assert_eq!(groups.len(), uf.set_count());
            // Each member of a group agrees on its representative.
            for g in &groups {
                for &x in g {
                    assert!(uf.same(g[0], x));
                }
            }
        },
    );
}

#[test]
fn cooccurrence_counts_match_bruteforce() {
    check(
        |g| g.vec(0..12, |g| g.vec(0..6, |g| g.range(0u32..12))),
        |postings| {
            let mut c = CooccurrenceCounter::new();
            for p in postings {
                c.add_posting(p.iter().copied());
            }
            let fast = c.counts();
            // Brute force over all pairs.
            let mut slow: std::collections::HashMap<(u32, u32), u32> =
                std::collections::HashMap::new();
            for p in postings {
                let mut s: Vec<u32> = p.clone();
                s.sort_unstable();
                s.dedup();
                for i in 0..s.len() {
                    for j in (i + 1)..s.len() {
                        *slow.entry((s[i], s[j])).or_insert(0) += 1;
                    }
                }
            }
            assert_eq!(fast, slow);
        },
    );
}

#[test]
fn cooccurrence_parallel_matches_sequential() {
    check(
        |g| g.vec(70..120, |g| g.vec(2..5, |g| g.range(0u32..20))),
        |postings| {
            let mut c = CooccurrenceCounter::new();
            for p in postings {
                c.add_posting(p.iter().copied());
            }
            assert_eq!(c.counts(), c.counts_parallel());
        },
    );
}

#[test]
fn graph_total_weight_is_edge_sum() {
    check(
        |g| edges(g, 15, 30),
        |es| {
            let mut b = GraphBuilder::new();
            for (u, v, w) in es {
                b.add_edge(*u, *v, *w);
            }
            let g = b.build();
            let sum: f64 = g.edges().map(|(_, _, w)| w).sum();
            assert!((sum - g.total_weight()).abs() < 1e-9);
        },
    );
}

#[test]
fn graph_degree_symmetry() {
    check(
        |g| edges(g, 15, 30),
        |es| {
            let mut b = GraphBuilder::new();
            for (u, v, w) in es {
                b.add_edge(*u, *v, *w);
            }
            let g = b.build();
            // Sum of degrees equals 2 * total weight (handshake lemma,
            // self-loops counted twice).
            let deg_sum: f64 = (0..g.node_count()).map(|u| g.degree(u as u32)).sum();
            assert!((deg_sum - 2.0 * g.total_weight()).abs() < 1e-9);
        },
    );
}
