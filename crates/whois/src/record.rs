//! Whois registration records and field-level similarity.

use smash_support::impl_json_struct;

/// A domain registration record with the five fields the paper compares:
/// registrant name, home address, email, phone number, and name servers.
///
/// All fields are optional — real Whois data is patchy, and the similarity
/// rule only counts fields present on at least one side.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WhoisRecord {
    /// Registrant (owner) name.
    pub registrant: Option<String>,
    /// Registrant postal address.
    pub address: Option<String>,
    /// Registrant email.
    pub email: Option<String>,
    /// Registrant phone number.
    pub phone: Option<String>,
    /// Authoritative name servers.
    pub name_servers: Vec<String>,
    /// `true` when the record is hidden behind a privacy/registration
    /// proxy. Two proxy records sharing only proxy-owned identity fields
    /// are *not* evidence of association.
    pub privacy_proxy: bool,
}

impl_json_struct!(WhoisRecord {
    registrant,
    address,
    email,
    phone,
    name_servers,
    privacy_proxy,
});

impl WhoisRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the registrant name.
    pub fn with_registrant(mut self, v: &str) -> Self {
        self.registrant = Some(v.to_owned());
        self
    }

    /// Sets the postal address.
    pub fn with_address(mut self, v: &str) -> Self {
        self.address = Some(v.to_owned());
        self
    }

    /// Sets the email.
    pub fn with_email(mut self, v: &str) -> Self {
        self.email = Some(v.to_owned());
        self
    }

    /// Sets the phone number.
    pub fn with_phone(mut self, v: &str) -> Self {
        self.phone = Some(v.to_owned());
        self
    }

    /// Adds one name server.
    pub fn with_name_server(mut self, v: &str) -> Self {
        self.name_servers.push(v.to_owned());
        self
    }

    /// Marks the record as privacy-proxy registered.
    pub fn with_privacy_proxy(mut self, proxy: bool) -> Self {
        self.privacy_proxy = proxy;
        self
    }

    /// Number of field slots carrying a value (name servers count as one
    /// slot when non-empty).
    pub fn field_count(&self) -> usize {
        usize::from(self.registrant.is_some())
            + usize::from(self.address.is_some())
            + usize::from(self.email.is_some())
            + usize::from(self.phone.is_some())
            + usize::from(!self.name_servers.is_empty())
    }

    /// Counts `(shared, union)` fields between two records.
    ///
    /// A scalar field is *shared* when both sides carry the same value; the
    /// name-server field is shared when the server sets intersect. A field
    /// is in the *union* when at least one side carries a value.
    ///
    /// When **both** records are privacy-proxy registered, the four
    /// identity fields (registrant, address, email, phone) are excluded
    /// from the shared count — they identify the proxy, not the owner —
    /// but still count toward the union.
    pub fn shared_fields(&self, other: &WhoisRecord) -> (usize, usize) {
        let both_proxy = self.privacy_proxy && other.privacy_proxy;
        let mut shared = 0;
        let mut union = 0;
        let scalar = |a: &Option<String>, b: &Option<String>| -> (bool, bool) {
            let in_union = a.is_some() || b.is_some();
            let is_shared = a.is_some() && a == b;
            (is_shared, in_union)
        };
        let identity_fields = [
            scalar(&self.registrant, &other.registrant),
            scalar(&self.address, &other.address),
            scalar(&self.email, &other.email),
            scalar(&self.phone, &other.phone),
        ];
        for (s, u) in identity_fields {
            if u {
                union += 1;
            }
            if s && !both_proxy {
                shared += 1;
            }
        }
        let ns_union = !self.name_servers.is_empty() || !other.name_servers.is_empty();
        if ns_union {
            union += 1;
            if self
                .name_servers
                .iter()
                .any(|n| other.name_servers.contains(n))
            {
                shared += 1;
            }
        }
        (shared, union)
    }

    /// The paper's Whois similarity: shared fields over union of fields
    /// (`0` when neither record has any field).
    pub fn similarity(&self, other: &WhoisRecord) -> f64 {
        let (shared, union) = self.shared_fields(other);
        if union == 0 {
            0.0
        } else {
            shared as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(reg: &str, addr: &str, mail: &str, ph: &str, ns: &str) -> WhoisRecord {
        WhoisRecord::new()
            .with_registrant(reg)
            .with_address(addr)
            .with_email(mail)
            .with_phone(ph)
            .with_name_server(ns)
    }

    #[test]
    fn identical_records_similarity_one() {
        let a = full("r", "a", "e", "p", "ns1");
        assert_eq!(a.similarity(&a.clone()), 1.0);
        assert_eq!(a.shared_fields(&a.clone()), (5, 5));
    }

    #[test]
    fn paper_figure5_case() {
        // Different registrants, same address/phone/name servers.
        let a = full("alice", "12 Elm St", "a@x.com", "555", "ns1.h.net");
        let b = full("bob", "12 Elm St", "b@y.com", "555", "ns1.h.net");
        let (shared, union) = a.shared_fields(&b);
        assert_eq!(shared, 3);
        assert_eq!(union, 5);
        assert!((a.similarity(&b) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_records_similarity_zero() {
        let e = WhoisRecord::new();
        assert_eq!(e.similarity(&WhoisRecord::new()), 0.0);
        assert_eq!(e.field_count(), 0);
    }

    #[test]
    fn missing_fields_dont_count_as_shared() {
        let a = WhoisRecord::new().with_phone("1");
        let b = WhoisRecord::new().with_email("x@y.z");
        assert_eq!(a.shared_fields(&b), (0, 2));
    }

    #[test]
    fn name_server_intersection_is_shared() {
        let a = WhoisRecord::new()
            .with_name_server("ns1.a")
            .with_name_server("ns2.a");
        let b = WhoisRecord::new()
            .with_name_server("ns2.a")
            .with_name_server("ns3.a");
        assert_eq!(a.shared_fields(&b), (1, 1));
    }

    #[test]
    fn proxy_pair_ignores_identity_fields() {
        let proxy =
            full("WhoisGuard", "Panama", "p@guard", "000", "ns1.g").with_privacy_proxy(true);
        let (shared, union) = proxy.shared_fields(&proxy.clone());
        assert_eq!(union, 5);
        assert_eq!(shared, 1); // only the name-server slot survives
    }

    #[test]
    fn single_proxy_side_still_counts() {
        let proxy =
            full("WhoisGuard", "Panama", "p@guard", "000", "ns1.g").with_privacy_proxy(true);
        let honest = full("WhoisGuard", "Panama", "p@guard", "000", "ns1.g");
        let (shared, _) = proxy.shared_fields(&honest);
        assert_eq!(shared, 5);
    }

    #[test]
    fn similarity_symmetric() {
        let a = full("r1", "a1", "e1", "p", "ns1");
        let b = WhoisRecord::new().with_phone("p").with_name_server("ns1");
        assert_eq!(a.similarity(&b), b.similarity(&a));
    }

    #[test]
    fn field_count() {
        assert_eq!(full("r", "a", "e", "p", "n").field_count(), 5);
        assert_eq!(WhoisRecord::new().with_phone("p").field_count(), 1);
    }
}
