//! Simulated Whois registry substrate for SMASH.
//!
//! The paper's Whois dimension (§III-B2) links servers whose domains were
//! registered with overlapping information: registrant name, home address,
//! email, phone number, and name servers. Live Whois is unavailable in a
//! reproduction, so this crate provides a deterministic in-memory registry
//! that the synthetic workload generator populates — campaign domains get
//! correlated records, benign domains get diverse ones.
//!
//! Similarity is the paper's rule: number of shared fields over the union
//! of present fields, with **at least two shared fields** required to call
//! two domains associated (guarding against the registration-proxy false
//! signal).
//!
//! # Example
//!
//! ```
//! use smash_whois::{WhoisRecord, WhoisRegistry};
//!
//! let mut reg = WhoisRegistry::new();
//! let a = WhoisRecord::new()
//!     .with_registrant("ivan")
//!     .with_phone("+7-495-1")
//!     .with_name_server("ns1.bullet.net");
//! let b = WhoisRecord::new()
//!     .with_registrant("dmitry")
//!     .with_phone("+7-495-1")
//!     .with_name_server("ns1.bullet.net");
//! reg.insert("evil-one.com", a);
//! reg.insert("evil-two.com", b);
//! // Different registrants, but shared phone + name server => associated.
//! assert!(reg.associated("evil-one.com", "evil-two.com"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod record;
pub mod registry;

pub use record::WhoisRecord;
pub use registry::WhoisRegistry;

/// Minimum number of shared Whois fields for two domains to be considered
/// associated (paper §III-B2).
pub const MIN_SHARED_FIELDS: usize = 2;
