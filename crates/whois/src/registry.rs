//! The in-memory Whois registry.

use crate::record::WhoisRecord;
use crate::MIN_SHARED_FIELDS;
use smash_support::impl_json_struct;
use std::collections::HashMap;

/// A domain → [`WhoisRecord`] lookup table.
///
/// Populated by the synthetic workload generator; queried by the SMASH
/// Whois dimension. Only domain-keyed servers have records — IP-keyed
/// servers never match.
#[derive(Debug, Clone, Default)]
pub struct WhoisRegistry {
    records: HashMap<String, WhoisRecord>,
}

impl_json_struct!(WhoisRegistry { records });

impl WhoisRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the record for `domain`.
    ///
    /// Returns the previous record, if any.
    pub fn insert(&mut self, domain: &str, record: WhoisRecord) -> Option<WhoisRecord> {
        self.records.insert(domain.to_ascii_lowercase(), record)
    }

    /// Looks up the record of `domain`.
    pub fn get(&self, domain: &str) -> Option<&WhoisRecord> {
        self.records.get(&domain.to_ascii_lowercase())
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the registry has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// FNV-1a fingerprint of the registry's canonical JSON
    /// (`fnv1a:<16 hex digits>`; map keys serialize sorted, so the value
    /// is deterministic). Combined with the trace fingerprint to key the
    /// checkpoint manifest — a resumed run must see the same registry.
    pub fn fingerprint(&self) -> String {
        use smash_support::ckpt;
        ckpt::fingerprint_string(ckpt::fnv1a(smash_support::json::to_string(self).as_bytes()))
    }

    /// Whois similarity between two domains (paper §III-B2), or `0` when
    /// either domain is unregistered.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        match (self.get(a), self.get(b)) {
            (Some(ra), Some(rb)) => ra.similarity(rb),
            _ => 0.0,
        }
    }

    /// Returns `true` when two domains share at least
    /// [`MIN_SHARED_FIELDS`] Whois fields — the paper's association rule.
    pub fn associated(&self, a: &str, b: &str) -> bool {
        match (self.get(a), self.get(b)) {
            (Some(ra), Some(rb)) => ra.shared_fields(rb).0 >= MIN_SHARED_FIELDS,
            _ => false,
        }
    }

    /// Iterates over `(domain, record)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &WhoisRecord)> {
        // lint:allow(hash-iter): documented arbitrary-order iterator; callers must sort.
        self.records.iter().map(|(d, r)| (d.as_str(), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> WhoisRegistry {
        let mut reg = WhoisRegistry::new();
        reg.insert(
            "a.com",
            WhoisRecord::new()
                .with_phone("555")
                .with_name_server("ns1.x"),
        );
        reg.insert(
            "b.com",
            WhoisRecord::new()
                .with_phone("555")
                .with_name_server("ns1.x"),
        );
        reg.insert("c.com", WhoisRecord::new().with_phone("555"));
        reg
    }

    #[test]
    fn associated_requires_two_shared_fields() {
        let reg = pair();
        assert!(reg.associated("a.com", "b.com"));
        assert!(!reg.associated("a.com", "c.com")); // only phone shared
    }

    #[test]
    fn unregistered_domains_never_match() {
        let reg = pair();
        assert!(!reg.associated("a.com", "nope.com"));
        assert_eq!(reg.similarity("nope.com", "a.com"), 0.0);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let reg = pair();
        assert!(reg.get("A.COM").is_some());
        assert!(reg.associated("A.Com", "B.COM"));
    }

    #[test]
    fn insert_replaces() {
        let mut reg = pair();
        let old = reg.insert("a.com", WhoisRecord::new());
        assert!(old.is_some());
        assert_eq!(reg.get("a.com").unwrap().field_count(), 0);
    }

    #[test]
    fn len_and_iter() {
        let reg = pair();
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
        assert_eq!(reg.iter().count(), 3);
    }
}
