//! Property-based tests for Whois similarity invariants.

use smash_support::check::{assume, check, Gen};
use smash_whois::{WhoisRecord, WhoisRegistry};

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";

/// Raw, shrinkable ingredients for a [`WhoisRecord`]: registrant,
/// address, email, phone, name servers, privacy-proxy flag.
type Raw = (
    Option<String>,
    Option<String>,
    Option<String>,
    Option<String>,
    Vec<String>,
    bool,
);

fn opt<F: FnOnce(&mut Gen) -> String>(g: &mut Gen, f: F) -> Option<String> {
    if g.bool(0.5) {
        Some(f(g))
    } else {
        None
    }
}

fn raw(g: &mut Gen) -> Raw {
    (
        opt(g, |g| g.string(2..=8, LOWER)),
        opt(g, |g| {
            g.string(2..=12, "abcdefghijklmnopqrstuvwxyz0123456789 ")
        }),
        opt(g, |g| {
            format!(
                "{}@{}.{}",
                g.string(2..=6, LOWER),
                g.string(2..=6, LOWER),
                g.string(2..=3, LOWER)
            )
        }),
        opt(g, |g| format!("+{}", g.string(5..=10, "0123456789"))),
        g.vec(0..3, |g| {
            format!("ns{}.{}.net", g.range(0u32..10), g.string(3..=6, LOWER))
        }),
        g.bool(0.5),
    )
}

fn record((reg, addr, email, phone, ns, proxy): &Raw) -> WhoisRecord {
    let mut r = WhoisRecord::new().with_privacy_proxy(*proxy);
    if let Some(v) = reg {
        r = r.with_registrant(v);
    }
    if let Some(v) = addr {
        r = r.with_address(v);
    }
    if let Some(v) = email {
        r = r.with_email(v);
    }
    if let Some(v) = phone {
        r = r.with_phone(v);
    }
    for n in ns {
        r = r.with_name_server(n);
    }
    r
}

#[test]
fn similarity_is_symmetric_and_bounded() {
    check(
        |g| (raw(g), raw(g)),
        |(a, b)| {
            let (a, b) = (record(a), record(b));
            let s1 = a.similarity(&b);
            let s2 = b.similarity(&a);
            assert!((s1 - s2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s1));
        },
    );
}

#[test]
fn shared_never_exceeds_union() {
    check(
        |g| (raw(g), raw(g)),
        |(a, b)| {
            let (shared, union) = record(a).shared_fields(&record(b));
            assert!(shared <= union);
            assert!(union <= 5);
        },
    );
}

#[test]
fn self_similarity_is_one_for_non_proxy() {
    check(raw, |r| {
        let a = record(r);
        assume(!a.privacy_proxy);
        assume(a.field_count() > 0);
        assert!((a.similarity(&a.clone()) - 1.0).abs() < 1e-12);
    });
}

#[test]
fn proxy_pairs_never_match_on_identity_alone() {
    // A proxy record compared with itself can share at most the
    // name-server slot.
    check(raw, |r| {
        let a = record(r);
        assume(a.privacy_proxy);
        let (shared, _) = a.shared_fields(&a.clone());
        assert!(shared <= 1, "shared {shared}");
    });
}

#[test]
fn registry_association_is_symmetric() {
    check(
        |g| (raw(g), raw(g)),
        |(a, b)| {
            let mut reg = WhoisRegistry::new();
            reg.insert("a.com", record(a));
            reg.insert("b.com", record(b));
            assert_eq!(
                reg.associated("a.com", "b.com"),
                reg.associated("b.com", "a.com")
            );
        },
    );
}

#[test]
fn unregistered_never_associates() {
    check(raw, |r| {
        let mut reg = WhoisRegistry::new();
        reg.insert("a.com", record(r));
        assert!(!reg.associated("a.com", "ghost.com"));
        assert_eq!(reg.similarity("ghost.com", "a.com"), 0.0);
    });
}
