//! Property-based tests for Whois similarity invariants.

use proptest::prelude::*;
use smash_whois::{WhoisRecord, WhoisRegistry};

fn record() -> impl Strategy<Value = WhoisRecord> {
    (
        prop::option::of("[a-z]{2,8}"),
        prop::option::of("[a-z0-9 ]{2,12}"),
        prop::option::of("[a-z]{2,6}@[a-z]{2,6}\\.[a-z]{2,3}"),
        prop::option::of("\\+[0-9]{5,10}"),
        prop::collection::vec("ns[0-9]\\.[a-z]{3,6}\\.net", 0..3),
        any::<bool>(),
    )
        .prop_map(|(reg, addr, email, phone, ns, proxy)| {
            let mut r = WhoisRecord::new().with_privacy_proxy(proxy);
            if let Some(v) = reg {
                r = r.with_registrant(&v);
            }
            if let Some(v) = addr {
                r = r.with_address(&v);
            }
            if let Some(v) = email {
                r = r.with_email(&v);
            }
            if let Some(v) = phone {
                r = r.with_phone(&v);
            }
            for n in ns {
                r = r.with_name_server(&n);
            }
            r
        })
}

proptest! {
    #[test]
    fn similarity_is_symmetric_and_bounded(a in record(), b in record()) {
        let s1 = a.similarity(&b);
        let s2 = b.similarity(&a);
        prop_assert!((s1 - s2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&s1));
    }

    #[test]
    fn shared_never_exceeds_union(a in record(), b in record()) {
        let (shared, union) = a.shared_fields(&b);
        prop_assert!(shared <= union);
        prop_assert!(union <= 5);
    }

    #[test]
    fn self_similarity_is_one_for_non_proxy(a in record()) {
        prop_assume!(!a.privacy_proxy);
        prop_assume!(a.field_count() > 0);
        prop_assert!((a.similarity(&a.clone()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proxy_pairs_never_match_on_identity_alone(a in record()) {
        // A proxy record compared with itself can share at most the
        // name-server slot.
        prop_assume!(a.privacy_proxy);
        let (shared, _) = a.shared_fields(&a.clone());
        prop_assert!(shared <= 1, "shared {shared}");
    }

    #[test]
    fn registry_association_is_symmetric(a in record(), b in record()) {
        let mut reg = WhoisRegistry::new();
        reg.insert("a.com", a);
        reg.insert("b.com", b);
        prop_assert_eq!(reg.associated("a.com", "b.com"), reg.associated("b.com", "a.com"));
    }

    #[test]
    fn unregistered_never_associates(a in record()) {
        let mut reg = WhoisRegistry::new();
        reg.insert("a.com", a);
        prop_assert!(!reg.associated("a.com", "ghost.com"));
        prop_assert_eq!(reg.similarity("ghost.com", "a.com"), 0.0);
    }
}
