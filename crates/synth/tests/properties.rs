//! Property-based tests over the generator's structural guarantees.

use smash_support::check::cases;
use smash_synth::campaigns::{cnc, dga, CampaignSeeds};
use smash_synth::config::DetectionCoverage;
use smash_synth::{Scenario, ScenarioBuilder, SynthConfig};
use smash_trace::TraceDataset;

#[test]
fn generation_is_a_pure_function_of_the_seed() {
    cases(24).run(
        |g| g.range(0u64..500),
        |&seed| {
            let a = Scenario::small_day(seed).generate();
            let b = Scenario::small_day(seed).generate();
            assert_eq!(a.dataset.record_count(), b.dataset.record_count());
            assert_eq!(a.dataset.server_count(), b.dataset.server_count());
            assert_eq!(a.truth.server_count(), b.truth.server_count());
            assert_eq!(a.ids2013.labeled_count(), b.ids2013.labeled_count());
        },
    );
}

#[test]
fn campaign_servers_always_appear_in_the_trace() {
    cases(24).run(
        |g| g.range(0u64..200),
        |&seed| {
            let data = Scenario::small_day(seed).generate();
            for (server, _) in data.truth.iter_servers() {
                assert!(
                    data.dataset.server_id(server).is_some(),
                    "labeled server {} missing from trace",
                    server
                );
            }
        },
    );
}

#[test]
fn ids_vintages_are_nested() {
    // Every 2012-labeled server is also 2013-labeled (signatures only
    // accumulate).
    cases(24).run(
        |g| g.range(0u64..200),
        |&seed| {
            let data = Scenario::small_day(seed).generate();
            for (server, _) in data.ids2012.iter() {
                assert!(data.ids2013.detects(server), "{} lost in 2013", server);
            }
        },
    );
}

#[test]
fn flux_campaign_structure_holds_for_any_seed() {
    cases(24).run(
        |g| (g.range(0u64..200), g.range(3usize..12), g.range(1usize..5)),
        |&(seed, domains, bots)| {
            let mut b = ScenarioBuilder::new(100, 86_400);
            let servers = cnc::generate(
                &mut b,
                "prop-flux",
                domains,
                bots,
                false,
                DetectionCoverage::typical(),
                CampaignSeeds::fixed(seed),
            );
            assert_eq!(servers.len(), domains);
            let parts = b.finish();
            let ds = TraceDataset::from_records(parts.records);
            // Every domain resolves into the trace with at most `bots` clients.
            for d in &servers {
                let sid = ds.server_id(d).unwrap();
                assert!(ds.clients_of(sid).len() <= bots);
                assert!(!ds.files_of(sid).is_empty());
            }
            // Whois correlation holds for every pair (spot-check first two).
            if servers.len() >= 2 {
                assert!(parts.whois.associated(&servers[0], &servers[1]));
            }
        },
    );
}

#[test]
fn dga_family_always_single_ip_set() {
    cases(24).run(
        |g| g.range(0u64..200),
        |&seed| {
            let mut b = ScenarioBuilder::new(60, 86_400);
            let servers = dga::generate(
                &mut b,
                "prop-dga",
                7,
                2,
                DetectionCoverage::zero_day(),
                CampaignSeeds::fixed(seed),
            );
            let ds = TraceDataset::from_records(b.finish().records);
            let ips: std::collections::BTreeSet<u32> = servers
                .iter()
                .filter_map(|d| ds.server_id(d))
                .flat_map(|s| ds.ips_of(s).to_vec())
                .collect();
            assert!(ips.len() <= 2, "{} ips", ips.len());
        },
    );
}

#[test]
fn custom_config_scales_sanely() {
    cases(24).run(
        |g| {
            (
                g.range(20usize..80),
                g.range(50usize..200),
                g.range(5usize..20),
            )
        },
        |&(n_clients, n_servers, mean)| {
            let config = SynthConfig {
                seed: 1,
                n_clients,
                n_benign_servers: n_servers,
                n_cdn: 2,
                zipf_exponent: 1.0,
                mean_client_requests: mean,
                day_seconds: 86_400,
                campaigns: vec![],
                noise: smash_synth::NoiseSpec::none(),
            };
            let data = Scenario::from_config(config).generate();
            assert_eq!(data.dataset.client_count(), n_clients);
            // Volume tracks clients × mean within a generous band (embeds,
            // mirrors, and chains add traffic).
            let n = data.dataset.record_count();
            assert!(n >= n_clients * mean / 2, "n = {}", n);
            assert!(n <= n_clients * mean * 4, "n = {}", n);
            // Timestamps stay within the day.
            for r in data.dataset.records() {
                assert!(r.timestamp < 86_400 + 3);
            }
        },
    );
}
