//! Property-based tests over the generator's structural guarantees.

use proptest::prelude::*;
use smash_synth::campaigns::{cnc, dga, CampaignSeeds};
use smash_synth::config::DetectionCoverage;
use smash_synth::{Scenario, ScenarioBuilder, SynthConfig};
use smash_trace::TraceDataset;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_a_pure_function_of_the_seed(seed in 0u64..500) {
        let a = Scenario::small_day(seed).generate();
        let b = Scenario::small_day(seed).generate();
        prop_assert_eq!(a.dataset.record_count(), b.dataset.record_count());
        prop_assert_eq!(a.dataset.server_count(), b.dataset.server_count());
        prop_assert_eq!(a.truth.server_count(), b.truth.server_count());
        prop_assert_eq!(a.ids2013.labeled_count(), b.ids2013.labeled_count());
    }

    #[test]
    fn campaign_servers_always_appear_in_the_trace(seed in 0u64..200) {
        let data = Scenario::small_day(seed).generate();
        for (server, _) in data.truth.iter_servers() {
            prop_assert!(
                data.dataset.server_id(server).is_some(),
                "labeled server {} missing from trace",
                server
            );
        }
    }

    #[test]
    fn ids_vintages_are_nested(seed in 0u64..200) {
        // Every 2012-labeled server is also 2013-labeled (signatures only
        // accumulate).
        let data = Scenario::small_day(seed).generate();
        for (server, _) in data.ids2012.iter() {
            prop_assert!(data.ids2013.detects(server), "{} lost in 2013", server);
        }
    }

    #[test]
    fn flux_campaign_structure_holds_for_any_seed(seed in 0u64..200, domains in 3usize..12, bots in 1usize..5) {
        let mut b = ScenarioBuilder::new(100, 86_400);
        let servers = cnc::generate(
            &mut b,
            "prop-flux",
            domains,
            bots,
            false,
            DetectionCoverage::typical(),
            CampaignSeeds::fixed(seed),
        );
        prop_assert_eq!(servers.len(), domains);
        let parts = b.finish();
        let ds = TraceDataset::from_records(parts.records);
        // Every domain resolves into the trace with at most `bots` clients.
        for d in &servers {
            let sid = ds.server_id(d).unwrap();
            prop_assert!(ds.clients_of(sid).len() <= bots);
            prop_assert!(!ds.files_of(sid).is_empty());
        }
        // Whois correlation holds for every pair (spot-check first two).
        if servers.len() >= 2 {
            prop_assert!(parts.whois.associated(&servers[0], &servers[1]));
        }
    }

    #[test]
    fn dga_family_always_single_ip_set(seed in 0u64..200) {
        let mut b = ScenarioBuilder::new(60, 86_400);
        let servers = dga::generate(
            &mut b,
            "prop-dga",
            7,
            2,
            DetectionCoverage::zero_day(),
            CampaignSeeds::fixed(seed),
        );
        let ds = TraceDataset::from_records(b.finish().records);
        let ips: std::collections::BTreeSet<u32> = servers
            .iter()
            .filter_map(|d| ds.server_id(d))
            .flat_map(|s| ds.ips_of(s).to_vec())
            .collect();
        prop_assert!(ips.len() <= 2, "{} ips", ips.len());
    }

    #[test]
    fn custom_config_scales_sanely(
        n_clients in 20usize..80,
        n_servers in 50usize..200,
        mean in 5usize..20,
    ) {
        let config = SynthConfig {
            seed: 1,
            n_clients,
            n_benign_servers: n_servers,
            n_cdn: 2,
            zipf_exponent: 1.0,
            mean_client_requests: mean,
            day_seconds: 86_400,
            campaigns: vec![],
            noise: smash_synth::NoiseSpec::none(),
        };
        let data = Scenario::from_config(config).generate();
        prop_assert_eq!(data.dataset.client_count(), n_clients);
        // Volume tracks clients × mean within a generous band (embeds,
        // mirrors, and chains add traffic).
        let n = data.dataset.record_count();
        prop_assert!(n >= n_clients * mean / 2, "n = {}", n);
        prop_assert!(n <= n_clients * mean * 4, "n = {}", n);
        // Timestamps stay within the day.
        for r in data.dataset.records() {
            prop_assert!(r.timestamp < 86_400 + 3);
        }
    }
}
