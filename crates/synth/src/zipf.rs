//! A simple Zipf sampler over ranks `0..n`.

use smash_support::rng::Rng;

/// Samples ranks with probability ∝ `1 / (rank+1)^s` — the classic model
/// of web-site popularity, which gives the trace its hyper-popular head
/// (filtered by the paper's IDF preprocessing) and long tail.
///
/// # Example
///
/// ```
/// use smash_synth::Zipf;
/// use smash_support::rng::SeedableRng;
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = smash_support::rng::DetRng::seed_from_u64(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler covers no ranks (never: `new` rejects
    /// `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_support::rng::DetRng;
    use smash_support::rng::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = DetRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::new(50, 1.0);
        let mut rng = DetRng::seed_from_u64(1);
        let mut counts = [0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[49]);
    }

    #[test]
    fn zero_exponent_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = DetRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1600..2400).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = DetRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }
}
