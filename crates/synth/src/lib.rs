//! Synthetic ISP workload generator for SMASH.
//!
//! The paper evaluates on nine days of residential ISP traces that cannot
//! be redistributed. This crate substitutes a **seeded, deterministic
//! generator** that emits HTTP traces with exactly the statistical
//! structure SMASH exploits:
//!
//! * a benign web: Zipf-popular servers, per-client browsing sessions,
//!   embedded CDN resources (referrer edges), URL shorteners (redirect
//!   chains), diverse Whois records, many files per server;
//! * planted malicious campaigns modeled on the paper's case studies —
//!   domain-flux C&C, Zeus-style DGA herds, Bagle-style two-stage
//!   download + C&C, Sality, ZmEu web scanning, Wordpress iframe
//!   injection, phishing, drop zones, and campaigns with obfuscated long
//!   filenames (paper Fig. 4);
//! * the paper's two known false-positive sources: torrent `scrape.php`
//!   herds and TeamViewer-style ID-server pools;
//! * ground-truth labels, simulated 2012/2013 IDS signature sets, and
//!   partial-coverage blacklists for the evaluation harness.
//!
//! Presets in [`scenario`] mirror the paper's three datasets
//! (`Data2011day`, `Data2012day`, `Data2012week`).
//!
//! # Example
//!
//! ```
//! use smash_synth::Scenario;
//!
//! let data = Scenario::small_day(7).generate();
//! assert!(data.dataset.record_count() > 0);
//! assert!(data.truth.malicious_server_count() > 0);
//! // Determinism: same seed, same trace.
//! let again = Scenario::small_day(7).generate();
//! assert_eq!(data.dataset.record_count(), again.dataset.record_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benign;
pub mod builder;
pub mod campaigns;
pub mod config;
pub mod names;
pub mod noise;
pub mod scenario;
pub mod stream;
pub mod zipf;

pub use builder::ScenarioBuilder;
pub use config::{CampaignSpec, DetectionCoverage, NoiseSpec, SynthConfig};
pub use scenario::{CampaignPlan, Persistence, Scenario, ScenarioData, WeekData, WeekScenario};
pub use zipf::Zipf;
