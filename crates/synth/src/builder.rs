//! Shared state threaded through the generators.
//!
//! The builder is pure storage plus allocators; **all randomness is passed
//! in** by the caller. This lets the week scenario keep a campaign's
//! *identity* (bots) and *infrastructure* (domains, IPs, Whois) on
//! separate seeds — persistent campaigns reuse both across days, agile
//! campaigns keep the identity seed but rotate the infrastructure seed
//! daily (the behaviour the paper measures in Fig. 7).

use crate::config::DetectionCoverage;
use crate::names;
use smash_groundtruth::{
    ActivityCategory, Blacklist, BlacklistSet, CampaignId, GroundTruth, Signature,
};
use smash_support::rng::Rng;
use smash_trace::HttpRecord;
use smash_whois::{WhoisRecord, WhoisRegistry};
use std::collections::HashSet;

/// Canonical name of client `i` — shared by every generator so bots and
/// benign browsing refer to the same machines.
pub fn client_name(i: usize) -> String {
    format!("client-{i:05}")
}

/// Samples `n` distinct clients from a pool of `n_clients`.
pub fn pick_clients<R: Rng + ?Sized>(rng: &mut R, n: usize, n_clients: usize) -> Vec<String> {
    let n = n.min(n_clients);
    let mut chosen = HashSet::new();
    while chosen.len() < n {
        chosen.insert(rng.gen_range(0..n_clients));
    }
    let mut v: Vec<usize> = chosen.into_iter().collect();
    v.sort_unstable();
    v.into_iter().map(client_name).collect()
}

/// Accumulates the records, labels, Whois entries, signatures, and
/// blacklist listings that the benign/campaign/noise generators emit.
///
/// Campaign generators follow a fixed protocol:
/// 1. invent server names;
/// 2. [`apply_coverage`](Self::apply_coverage) to register IDS signatures
///    and blacklist entries and learn which servers are defunct;
/// 3. emit traffic (defunct servers answer with errors);
/// 4. register ground-truth labels.
#[derive(Debug)]
pub struct ScenarioBuilder {
    /// Simulated day length in seconds.
    pub day_seconds: u64,
    n_clients: usize,
    records: Vec<HttpRecord>,
    truth: GroundTruth,
    whois: WhoisRegistry,
    sigs2012: Vec<Signature>,
    sigs2013: Vec<Signature>,
    direct_blacklist: Blacklist,
    aggregator_hits: Vec<String>,
    next_campaign_ip: u32,
    next_benign_ip: u32,
    next_provider: u32,
}

/// Everything a finished builder hands to [`crate::scenario`].
#[derive(Debug)]
pub struct ScenarioParts {
    /// Raw HTTP records (unsorted).
    pub records: Vec<HttpRecord>,
    /// Planted ground truth.
    pub truth: GroundTruth,
    /// Whois registry.
    pub whois: WhoisRegistry,
    /// 2012-vintage IDS signatures.
    pub sigs2012: Vec<Signature>,
    /// 2013-vintage IDS signatures (superset of coverage).
    pub sigs2013: Vec<Signature>,
    /// Blacklists with listings applied.
    pub blacklists: BlacklistSet,
}

impl ScenarioBuilder {
    /// Creates a builder for `n_clients` clients over a `day_seconds` day.
    pub fn new(n_clients: usize, day_seconds: u64) -> Self {
        Self {
            day_seconds,
            n_clients,
            records: Vec::new(),
            truth: GroundTruth::new(),
            whois: WhoisRegistry::new(),
            sigs2012: Vec::new(),
            sigs2013: Vec::new(),
            direct_blacklist: Blacklist::new("combined-blacklist"),
            aggregator_hits: Vec::new(),
            next_campaign_ip: 0,
            next_benign_ip: 0,
            next_provider: 0,
        }
    }

    /// Number of clients in the pool.
    pub fn client_count(&self) -> usize {
        self.n_clients
    }

    /// Samples `n` distinct clients to act as a campaign's bots.
    ///
    /// Bots come from the ordinary client pool: infected machines keep
    /// browsing the benign web, as in the real traces.
    pub fn pick_bots<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<String> {
        pick_clients(rng, n, self.n_clients)
    }

    /// A uniformly random timestamp within the day.
    pub fn ts<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.day_seconds.max(1))
    }

    /// Appends a record to the trace.
    pub fn push(&mut self, record: HttpRecord) {
        self.records.push(record);
    }

    /// Number of records emitted so far.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Allocates one fresh IP in the malicious hosting range.
    pub fn campaign_ip(&mut self) -> String {
        let n = self.next_campaign_ip;
        self.next_campaign_ip += 1;
        format!("185.{}.{}.{}", n / 65536 % 256, n / 256 % 256, n % 256)
    }

    /// Allocates a pool of `n` malicious IPs for a campaign to share.
    pub fn campaign_ip_pool(&mut self, n: usize) -> Vec<String> {
        (0..n.max(1)).map(|_| self.campaign_ip()).collect()
    }

    /// Allocates one fresh IP in the benign hosting range.
    pub fn benign_ip(&mut self) -> String {
        let n = self.next_benign_ip;
        self.next_benign_ip += 1;
        format!("23.{}.{}.{}", n / 65536 % 256, n / 256 % 256, n % 256)
    }

    /// A fresh hosting-provider id for diverse benign name servers.
    pub fn next_provider(&mut self) -> u32 {
        self.next_provider += 1;
        self.next_provider
    }

    /// Registers a campaign in the ground truth.
    pub fn begin_campaign(&mut self, name: &str, category: ActivityCategory) -> CampaignId {
        self.truth.add_campaign(name, category)
    }

    /// Labels one server in the ground truth.
    pub fn label_server(&mut self, server: &str, campaign: CampaignId, category: ActivityCategory) {
        self.truth.add_server(server, campaign, category);
    }

    /// Registers correlated Whois records for a campaign's domains: all
    /// share address, phone, and name server; registrant names differ
    /// (the paper's Fig. 5 pattern).
    pub fn register_whois_correlated<R: Rng + ?Sized>(&mut self, rng: &mut R, domains: &[String]) {
        let addr = names::address(rng);
        let ph = names::phone(rng);
        let provider = self.next_provider();
        let ns = names::name_server(rng, provider);
        for d in domains {
            let rec = WhoisRecord::new()
                .with_registrant(&names::registrant(rng))
                .with_email(&format!("{}@mailbox.example", names::rand_token(rng, 8)))
                .with_address(&addr)
                .with_phone(&ph)
                .with_name_server(&ns);
            self.whois.insert(d, rec);
        }
    }

    /// Registers an independent (benign-looking) Whois record. Benign
    /// domains share at most a hosting provider's name server — one field,
    /// below the two-field association rule.
    pub fn register_whois_random<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        domain: &str,
        provider: u32,
    ) {
        let rec = WhoisRecord::new()
            .with_registrant(&names::registrant(rng))
            .with_email(&format!("{}@mail.example", names::rand_token(rng, 8)))
            .with_address(&names::address(rng))
            .with_phone(&names::phone(rng))
            .with_name_server(&names::name_server(rng, provider));
        self.whois.insert(domain, rec);
    }

    /// Applies detection coverage to a campaign's servers: registers IDS
    /// reputation signatures (2013 covers at least the 2012 set),
    /// blacklist listings, and returns the set of defunct servers the
    /// traffic emitter must answer with errors.
    pub fn apply_coverage<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        servers: &[String],
        coverage: DetectionCoverage,
        threat_id: &str,
    ) -> HashSet<String> {
        let mut defunct = HashSet::new();
        // lint:allow(hash-iter): `servers` here is the `&[String]` parameter, not the HashSet.
        for s in servers {
            let r: f64 = rng.gen();
            if r < coverage.ids2012 {
                self.sigs2012.push(Signature::new(threat_id).with_server(s));
                self.sigs2013.push(Signature::new(threat_id).with_server(s));
            } else if r < coverage.ids2013 {
                self.sigs2013.push(Signature::new(threat_id).with_server(s));
            }
            if rng.gen::<f64>() < coverage.blacklist {
                self.direct_blacklist.add(s);
            } else if rng.gen::<f64>() < 0.1 {
                // A lone aggregator listing: not enough for confirmation.
                self.aggregator_hits.push(s.clone());
            }
            if rng.gen::<f64>() < coverage.defunct {
                defunct.insert(s.clone());
            }
        }
        defunct
    }

    /// Adds a *pattern* signature (file/params/UA) to both vintages —
    /// used for well-known protocol threats.
    pub fn add_pattern_signature(&mut self, sig: Signature, in_2012: bool) {
        if in_2012 {
            self.sigs2012.push(sig.clone());
        }
        self.sigs2013.push(sig);
    }

    /// Marks servers defunct in the ground truth (call after labeling).
    pub fn mark_defunct(&mut self, servers: &HashSet<String>) {
        // lint:allow(hash-iter): marking servers defunct is order-independent.
        for s in servers {
            self.truth.set_defunct(s, true);
        }
    }

    /// Finalizes the builder.
    pub fn finish(self) -> ScenarioParts {
        let mut blacklists = BlacklistSet::new();
        blacklists.push(self.direct_blacklist);
        blacklists.push(Blacklist::new("whatismyipaddress").with_aggregator(true));
        for s in &self.aggregator_hits {
            blacklists.add_aggregator_listing(s);
        }
        ScenarioParts {
            records: self.records,
            truth: self.truth,
            whois: self.whois,
            sigs2012: self.sigs2012,
            sigs2013: self.sigs2013,
            blacklists,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_support::rng::DetRng;
    use smash_support::rng::SeedableRng;

    fn rng(seed: u64) -> DetRng {
        DetRng::seed_from_u64(seed)
    }

    #[test]
    fn bots_are_distinct_and_sorted() {
        let b = ScenarioBuilder::new(50, 86_400);
        let bots = b.pick_bots(&mut rng(1), 10);
        assert_eq!(bots.len(), 10);
        let set: HashSet<&String> = bots.iter().collect();
        assert_eq!(set.len(), 10);
        let mut sorted = bots.clone();
        sorted.sort();
        assert_eq!(bots, sorted);
    }

    #[test]
    fn bots_capped_at_pool_size() {
        let b = ScenarioBuilder::new(3, 86_400);
        assert_eq!(b.pick_bots(&mut rng(1), 10).len(), 3);
    }

    #[test]
    fn same_seed_same_bots() {
        let b = ScenarioBuilder::new(100, 86_400);
        assert_eq!(b.pick_bots(&mut rng(9), 5), b.pick_bots(&mut rng(9), 5));
    }

    #[test]
    fn ip_allocators_never_collide() {
        let mut b = ScenarioBuilder::new(10, 86_400);
        let mut seen = HashSet::new();
        for _ in 0..600 {
            assert!(seen.insert(b.campaign_ip()));
            assert!(seen.insert(b.benign_ip()));
        }
    }

    #[test]
    fn correlated_whois_is_associated() {
        let mut b = ScenarioBuilder::new(10, 86_400);
        let domains = vec!["a.com".to_string(), "b.com".to_string()];
        b.register_whois_correlated(&mut rng(3), &domains);
        let parts = b.finish();
        assert!(parts.whois.associated("a.com", "b.com"));
    }

    #[test]
    fn random_whois_is_not_associated() {
        let mut b = ScenarioBuilder::new(10, 86_400);
        let p1 = b.next_provider();
        let p2 = b.next_provider();
        let mut r = rng(4);
        b.register_whois_random(&mut r, "a.com", p1);
        b.register_whois_random(&mut r, "b.com", p2);
        let parts = b.finish();
        assert!(!parts.whois.associated("a.com", "b.com"));
    }

    #[test]
    fn coverage_zero_registers_nothing() {
        let mut b = ScenarioBuilder::new(10, 86_400);
        let servers = vec!["x.com".to_string()];
        let defunct = b.apply_coverage(
            &mut rng(5),
            &servers,
            DetectionCoverage {
                ids2012: 0.0,
                ids2013: 0.0,
                blacklist: 0.0,
                defunct: 0.0,
            },
            "T",
        );
        assert!(defunct.is_empty());
        let parts = b.finish();
        assert!(parts.sigs2012.is_empty());
        assert!(parts.sigs2013.is_empty());
    }

    #[test]
    fn full_coverage_registers_everything() {
        let mut b = ScenarioBuilder::new(10, 86_400);
        let servers: Vec<String> = (0..20).map(|i| format!("s{i}.com")).collect();
        let defunct = b.apply_coverage(&mut rng(6), &servers, DetectionCoverage::well_known(), "T");
        assert!(defunct.is_empty()); // well_known has defunct = 0
        let parts = b.finish();
        assert_eq!(parts.sigs2012.len(), 20);
        assert_eq!(parts.sigs2013.len(), 20);
        let confirmed = servers
            .iter()
            .filter(|s| parts.blacklists.confirmed(s))
            .count();
        assert!(confirmed >= 5, "confirmed {confirmed}/20 at p=0.6");
    }

    #[test]
    fn zero_day_coverage_separates_vintages() {
        let mut b = ScenarioBuilder::new(10, 86_400);
        let servers: Vec<String> = (0..10).map(|i| format!("z{i}.cc")).collect();
        b.apply_coverage(&mut rng(7), &servers, DetectionCoverage::zero_day(), "Zbot");
        let parts = b.finish();
        assert!(parts.sigs2012.is_empty());
        assert_eq!(parts.sigs2013.len(), 10);
    }

    #[test]
    fn timestamps_within_day() {
        let b = ScenarioBuilder::new(10, 1000);
        let mut r = rng(8);
        for _ in 0..100 {
            assert!(b.ts(&mut r) < 1000);
        }
    }

    #[test]
    fn defunct_marking() {
        let mut b = ScenarioBuilder::new(10, 86_400);
        let c = b.begin_campaign("x", ActivityCategory::Phishing);
        b.label_server("p.com", c, ActivityCategory::Phishing);
        let mut set = HashSet::new();
        set.insert("p.com".to_string());
        b.mark_defunct(&set);
        let parts = b.finish();
        assert!(parts.truth.server("p.com").unwrap().defunct);
    }
}
