//! Streamed ISP-scale scenario generation.
//!
//! The preset scenarios in [`crate::scenario`] materialize every record
//! in memory before interning, which is fine up to ~10⁵ requests but
//! rules out the paper's ISP vantage point (§V: hundreds of millions of
//! requests per day). This module generates records *lazily*: the
//! stream is a pure function of `(seed, client index)`, each client's
//! burst is produced on demand and dropped as soon as the consumer
//! moves on, so peak memory is one client's burst plus the Zipf table —
//! never the full trace. [`smash_trace::TraceDataset::from_records`]
//! takes any `IntoIterator`, so the interned dataset is built directly
//! from the stream without an intermediate `Vec<HttpRecord>`.
//!
//! Determinism: every call to [`StreamScenario::records`] yields the
//! identical sequence — per-client RNGs are derived with the same
//! SplitMix64 sub-seeding the batch scenarios use, and no state crosses
//! client boundaries. Collecting the stream and re-iterating it lazily
//! are byte-identical (`tests/stream_scenario.rs`).
//!
//! The world model is deliberately simpler than the batch presets (no
//! Whois, no IDS labels): the huge scenario exists to exercise
//! *throughput* — the IDF filter dropping hyper-popular servers, the
//! LSH candidate funnel, and streaming ingest — not evaluation metrics.

use crate::scenario::mix;
use crate::zipf::Zipf;
use smash_support::rng::{DetRng, Rng, SeedableRng};
use smash_trace::{HttpRecord, TraceDataset};
use std::net::Ipv4Addr;

/// A lazily generated single-day scenario: Zipf-browsing clients over a
/// benign server universe, with the first
/// `campaigns · bots_per_campaign` clients doubling as bots that herd
/// on their campaign's servers.
#[derive(Debug, Clone)]
pub struct StreamScenario {
    /// RNG seed; the record stream is a pure function of the scenario.
    pub seed: u64,
    /// Number of clients (bots included).
    pub clients: usize,
    /// Size of the benign server universe.
    pub benign_servers: usize,
    /// Number of planted campaigns.
    pub campaigns: usize,
    /// Servers per campaign (the herd the miner should find).
    pub servers_per_campaign: usize,
    /// Bots per campaign; must stay under the IDF threshold so campaign
    /// servers survive preprocessing.
    pub bots_per_campaign: usize,
    /// Zipf exponent of benign server popularity.
    pub zipf_exponent: f64,
    /// Length of the simulated day in seconds.
    pub day_seconds: u64,
}

impl StreamScenario {
    /// The ISP-scale preset: 10⁶ clients, ≥10⁷ requests (8–16 per
    /// client), 30 000 benign servers, 8 campaigns of 12 servers × 120
    /// bots.
    pub fn huge(seed: u64) -> Self {
        Self {
            seed,
            clients: 1_000_000,
            benign_servers: 30_000,
            campaigns: 8,
            servers_per_campaign: 12,
            bots_per_campaign: 120,
            zipf_exponent: 1.0,
            day_seconds: 86_400,
        }
    }

    /// The reduced variant behind `smash-bench --huge --quick`: same
    /// world shape at 1/25 the client count, for CI smokes.
    pub fn quick(seed: u64) -> Self {
        Self {
            clients: 40_000,
            benign_servers: 4_000,
            ..Self::huge(seed)
        }
    }

    /// Lower bound on the stream length (every client emits at least 8
    /// browsing requests).
    pub fn min_records(&self) -> u64 {
        self.clients as u64 * 8
    }

    /// Number of bot clients (the stream's first client indices).
    pub fn bot_count(&self) -> usize {
        self.campaigns.saturating_mul(self.bots_per_campaign)
    }

    /// The lazily generated record stream. Each call restarts the same
    /// deterministic sequence; memory stays bounded by one client's
    /// burst regardless of how many records are consumed.
    pub fn records(&self) -> impl Iterator<Item = HttpRecord> + '_ {
        let zipf = Zipf::new(self.benign_servers.max(1), self.zipf_exponent);
        (0..self.clients).flat_map(move |i| self.client_burst(&zipf, i))
    }

    /// Interns the whole stream into a dataset without materializing
    /// the record vector: records flow straight into the column arena
    /// and postings, so peak memory is the arena plus one client burst.
    pub fn dataset(&self) -> TraceDataset {
        TraceDataset::from_records(self.records())
    }

    /// [`dataset`](Self::dataset) with governor byte-accounting: the
    /// growing arena is charged against `scope` in chunks, so ingest
    /// shows up in peak-tracked-bytes reports and honors cancellation.
    pub fn dataset_governed(
        &self,
        scope: Option<&smash_support::governor::StageScope>,
    ) -> TraceDataset {
        TraceDataset::from_records_governed(self.records(), scope)
    }

    /// One client's records: benign Zipf browsing, plus the campaign
    /// herd contacts when the client is a bot. Pure function of
    /// `(seed, i)`.
    fn client_burst(&self, zipf: &Zipf, i: usize) -> Vec<HttpRecord> {
        let mut rng = DetRng::seed_from_u64(mix(self.seed, 0xC11E, i as u64));
        let client = format!("u{i}");
        let browse = 8 + (rng.gen_range(0..9u32) as usize);
        let mut burst = Vec::with_capacity(browse + 2 * self.servers_per_campaign);

        for _ in 0..browse {
            let rank = zipf.sample(&mut rng);
            let t = rng.gen_range(0..self.day_seconds);
            burst.push(HttpRecord::new_with_ip(
                t,
                &client,
                // Two-label hosts: servers are keyed by second-level
                // domain, so each rank must own its own 2LD.
                &format!("w{rank}.example"),
                benign_ip(rank),
                &benign_uri(self.seed, rank, &mut rng),
            ));
        }

        if i < self.bot_count() && self.bots_per_campaign > 0 {
            let campaign = i / self.bots_per_campaign;
            for server in 0..self.servers_per_campaign {
                // Each bot checks in with most of its campaign's herd —
                // the shared-client signal of eq. 1.
                if !rng.gen_bool(0.75) {
                    continue;
                }
                for _ in 0..1 + rng.gen_range(0..2u32) {
                    let t = rng.gen_range(0..self.day_seconds);
                    let file = rng.gen_range(0..4u32);
                    // Campaign URIs are shared across the campaign's
                    // servers (uri-file herd) but unique to the
                    // campaign.
                    let uri = if file == 0 {
                        format!("/g{campaign}.php")
                    } else {
                        format!("/cfg{campaign}-{file}.bin")
                    };
                    burst.push(HttpRecord::new_with_ip(
                        t,
                        &client,
                        &format!("c{campaign}-{server}.bad"),
                        campaign_ip(campaign, server),
                        &uri,
                    ));
                }
            }
        }
        burst
    }
}

/// Deterministic address of benign server `rank` (10.0.0.0/8).
fn benign_ip(rank: usize) -> Ipv4Addr {
    Ipv4Addr::from(0x0A00_0000 | (rank as u32 & 0x00FF_FFFF))
}

/// Deterministic address of one campaign server (203.0.113.0/24-ish
/// block spread over 198.18.0.0/15).
fn campaign_ip(campaign: usize, server: usize) -> Ipv4Addr {
    let idx = (campaign * 251 + server) as u32;
    Ipv4Addr::from(0xC612_0000 | (idx & 0xFFFF))
}

/// One benign request URI on server `rank`: mostly server-unique pages
/// plus the occasional universe-wide common file.
fn benign_uri(seed: u64, rank: usize, rng: &mut DetRng) -> String {
    let roll = rng.gen_range(0..20u32);
    if roll == 0 {
        return "/index.html".to_owned();
    }
    if roll == 1 {
        return "/favicon.ico".to_owned();
    }
    // Server-unique page pool, sized by a per-server die so file-set
    // cardinalities vary (4–11 pages).
    let pages = 4 + (mix(seed, 0xF11E, rank as u64) % 8);
    let page = rng.gen_range(0..pages);
    format!("/s{rank}/p{page}.html")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_across_calls() {
        let s = StreamScenario {
            clients: 500,
            benign_servers: 200,
            ..StreamScenario::quick(11)
        };
        let a: Vec<HttpRecord> = s.records().collect();
        let b: Vec<HttpRecord> = s.records().collect();
        assert_eq!(a, b);
        assert!(a.len() as u64 >= s.min_records());
    }

    #[test]
    fn bots_contact_their_campaign_herd() {
        let s = StreamScenario {
            clients: 2_000,
            benign_servers: 300,
            ..StreamScenario::quick(3)
        };
        let ds = s.dataset();
        // Every campaign server must exist and be visited by a healthy
        // fraction of its bots — and nobody else.
        for c in 0..s.campaigns {
            for server in 0..s.servers_per_campaign {
                let host = format!("c{c}-{server}.bad");
                let id = ds
                    .server_id(&host)
                    .unwrap_or_else(|| panic!("campaign server {host} missing from stream"));
                let visitors = ds.clients_of(id).len();
                assert!(
                    visitors > s.bots_per_campaign / 2 && visitors <= s.bots_per_campaign,
                    "{host}: {visitors} visitors for {} bots",
                    s.bots_per_campaign
                );
            }
        }
    }

    #[test]
    fn seeds_change_the_stream() {
        let a = StreamScenario {
            clients: 50,
            ..StreamScenario::quick(1)
        };
        let b = StreamScenario {
            clients: 50,
            ..StreamScenario::quick(2)
        };
        let va: Vec<HttpRecord> = a.records().collect();
        let vb: Vec<HttpRecord> = b.records().collect();
        assert_ne!(va, vb);
    }
}
