//! The benign web: Zipf-popular servers, browsing sessions, CDNs, URL
//! shorteners.

use crate::builder::{client_name, ScenarioBuilder};
use crate::names;
use crate::zipf::Zipf;
use smash_support::rng::Rng;
use smash_trace::HttpRecord;

/// One benign web server with its own content.
#[derive(Debug, Clone)]
pub struct BenignServer {
    /// Second-level domain.
    pub domain: String,
    /// The server's IPs (1–2).
    pub ips: Vec<String>,
    /// The server's page files (every server also serves `index.html`).
    pub files: Vec<String>,
}

/// The benign server universe, shared across the days of a week scenario.
#[derive(Debug, Clone)]
pub struct BenignWorld {
    /// Ordinary web servers, ordered by popularity rank (rank 0 most
    /// popular).
    pub servers: Vec<BenignServer>,
    /// Hyper-popular CDN domains embedded by many pages.
    pub cdns: Vec<BenignServer>,
    /// URL-shortener/redirector domains.
    pub shorteners: Vec<BenignServer>,
    /// Multi-hop redirect chains: `(hop1, hop2, landing index)`. The two
    /// hops 302 through each other into the landing page and share one
    /// service IP — the paper's *redirection groups*, which the pruning
    /// stage replaces with the landing server.
    pub chains: Vec<(BenignServer, BenignServer, usize)>,
    /// Mirror families: groups of server indices where the first member
    /// is the landing page and the rest are mirrors embedding its
    /// content. Mirrors share the landing's visitors *and* files, so they
    /// correlate across dimensions like a campaign would — the paper's
    /// *referrer groups*, which the pruning stage must remove.
    pub families: Vec<Vec<usize>>,
    family_of: std::collections::HashMap<usize, usize>,
    zipf: Zipf,
}

const CDN_NAMES: &[&str] = &[
    "fbcdn.net",
    "akamaihd.net",
    "cloudfront.net",
    "gstatic.com",
    "twimg.com",
    "ytimg.com",
    "gravatar.com",
    "typekit.net",
];

impl BenignWorld {
    /// Builds the server universe from a dedicated RNG.
    ///
    /// Using a *separate* seed here keeps the universe identical across
    /// the days of a week scenario while daily traffic varies.
    pub fn build<R: Rng + ?Sized>(
        b: &mut ScenarioBuilder,
        rng: &mut R,
        n_servers: usize,
        n_cdn: usize,
        zipf_exponent: f64,
    ) -> Self {
        let mut seen = std::collections::HashSet::new();
        let mut servers = Vec::with_capacity(n_servers);
        // ~1 provider per 20 servers: benign domains share at most the
        // provider's name server (one Whois field — not associated).
        let n_providers = (n_servers / 20).max(1) as u32;
        for rank in 0..n_servers {
            let mut domain = names::benign_domain(rng);
            while !seen.insert(domain.clone()) {
                domain = names::benign_domain(rng);
            }
            let ips: Vec<String> = (0..rng.gen_range(1..3)).map(|_| b.benign_ip()).collect();
            let mut files = vec!["index.html".to_string()];
            let n_files = rng.gen_range(4..30);
            for _ in 0..n_files {
                // Mostly server-unique pages, with a sprinkle of CMS
                // boilerplate shared across the whole web — but only on
                // file-rich, reasonably popular servers. On a tail server
                // with two observed requests, one shared boilerplate name
                // would mimic a campaign's shared script; popular servers
                // dilute it across many observed files.
                if rank < n_servers * 3 / 5 && n_files >= 10 && rng.gen::<f64>() < 0.2 {
                    files.push(names::common_page_file(rng));
                } else {
                    files.push(names::page_file(rng));
                }
            }
            files.dedup();
            let provider = rng.gen_range(1..=n_providers);
            b.register_whois_random(rng, &domain, provider);
            servers.push(BenignServer { domain, ips, files });
        }
        let cdns: Vec<BenignServer> = CDN_NAMES
            .iter()
            .take(n_cdn)
            .map(|name| {
                let ips: Vec<String> = (0..4).map(|_| b.benign_ip()).collect();
                let files: Vec<String> = (0..20).map(|k| format!("asset{k}.png")).collect();
                BenignServer {
                    domain: (*name).to_string(),
                    ips,
                    files,
                }
            })
            .collect();
        let shorteners: Vec<BenignServer> = (0..(n_cdn / 2).max(1))
            .map(|i| BenignServer {
                domain: format!("shrt{i}link.biz"),
                ips: vec![b.benign_ip()],
                files: vec![],
            })
            .collect();
        // Mirror families among mid-popularity servers: the mirrors copy
        // the landing server's files.
        let mut families = Vec::new();
        let mut family_of = std::collections::HashMap::new();
        if n_servers >= 40 {
            let n_families = (n_servers / 80).max(1);
            for f in 0..n_families {
                // Mid-popularity landing; mirrors live in the rarely
                // bookmarked 60–80% popularity band so almost all their
                // traffic arrives via the landing's referrals (and below
                // the attack-target tail, which starts deeper).
                let landing = n_servers / 4 + f * 7;
                let mirror_base = n_servers * 3 / 5;
                // Mostly small families; a few big mirror pools that score
                // high enough to reach (and exercise) the pruning stage.
                let size = if f % 5 == 0 {
                    8
                } else {
                    2 + rng.gen_range(0..2usize)
                };
                let members: Vec<usize> = std::iter::once(landing)
                    .chain((1..=size).map(|k| mirror_base + f + k * n_families))
                    .filter(|&i| i < n_servers * 4 / 5)
                    .collect();
                if members.len() < 2 {
                    continue;
                }
                let landing_files = servers[members[0]].files.clone();
                for &m in &members[1..] {
                    servers[m].files = landing_files.clone();
                }
                for &m in &members {
                    family_of.insert(m, families.len());
                }
                families.push(members);
            }
        }
        // Multi-hop redirect chains into mid-popularity landings.
        let chains: Vec<(BenignServer, BenignServer, usize)> = (0..(n_servers / 250))
            .map(|i| {
                let ip = b.benign_ip();
                let hop = |tag: &str| BenignServer {
                    domain: format!("go2{tag}{i}track.biz"),
                    ips: vec![ip.clone()],
                    files: vec![],
                };
                let landing = n_servers / 5 + i * 11;
                (hop("a"), hop("b"), landing.min(n_servers - 1))
            })
            .collect();
        Self {
            servers,
            cdns,
            shorteners,
            chains,
            families,
            family_of,
            zipf: Zipf::new(n_servers.max(1), zipf_exponent),
        }
    }

    /// Servers from the unpopular tail — targets for attacking campaigns
    /// (scanning, iframe injection), which in practice hit small sites.
    pub fn tail_servers(&self, n: usize) -> &[BenignServer] {
        let len = self.servers.len();
        let n = n.min(len);
        &self.servers[len - n..]
    }

    /// A deterministic half of the unpopular tail, selected by domain
    /// hash parity. Attacking campaigns draw victims from opposite
    /// parities so no server is ever hit by two campaigns — a shared
    /// victim would fuse their herds.
    pub fn tail_partition(&self, pool: usize, parity: u8) -> Vec<&BenignServer> {
        self.tail_servers(pool)
            .iter()
            .filter(|s| {
                let h: u32 = s
                    .domain
                    .bytes()
                    .fold(17u32, |a, b| a.wrapping_mul(31).wrapping_add(b as u32));
                (h % 2) as u8 == parity % 2
            })
            .collect()
    }

    /// Emits one day of benign browsing into `b`.
    ///
    /// Clients have heterogeneous interests: each first draws a personal
    /// *bookmark set* by Zipf popularity and then browses within it. This
    /// is the property the paper's main dimension rests on — "different
    /// (independent) servers usually have different sets of clients" —
    /// and IID sampling would destroy it by giving every client the same
    /// visit distribution.
    ///
    /// Every session picks a bookmarked landing server, fetches one of its
    /// pages, then (often) fetches embedded CDN assets carrying the
    /// landing domain as referrer; occasionally the client arrives through
    /// a URL shortener's redirect.
    pub fn emit_traffic<R: Rng + ?Sized>(
        &self,
        b: &mut ScenarioBuilder,
        rng: &mut R,
        mean_client_requests: usize,
    ) {
        let n_clients = b.client_count();
        for ci in 0..n_clients {
            let client = client_name(ci);
            let ua = names::browser_ua(rng);
            // Personal bookmark set: Zipf keeps the global popularity
            // skew, but each client only ever visits its own subset.
            // Distinct draws are kept in sample order — truncating a
            // sorted list would bias every set toward the global head.
            let n_bookmarks = rng.gen_range(8..30);
            let mut seen = std::collections::HashSet::new();
            let mut bookmarks: Vec<usize> = Vec::with_capacity(n_bookmarks);
            for _ in 0..n_bookmarks * 3 {
                if bookmarks.len() >= n_bookmarks {
                    break;
                }
                let s = self.zipf.sample(rng);
                if seen.insert(s) {
                    bookmarks.push(s);
                }
            }
            let mut budget =
                rng.gen_range((mean_client_requests / 2).max(1)..=mean_client_requests * 3 / 2);
            while budget > 0 {
                let server_idx = bookmarks[rng.gen_range(0..bookmarks.len())];
                let server = &self.servers[server_idx];
                let ip = &server.ips[rng.gen_range(0..server.ips.len())];
                let file = &server.files[rng.gen_range(0..server.files.len())];
                let ts = b.ts(rng);
                // Occasionally arrive via a shortener redirect.
                if !self.shorteners.is_empty() && rng.gen::<f64>() < 0.03 {
                    let sh = &self.shorteners[rng.gen_range(0..self.shorteners.len())];
                    let token = names::rand_token(rng, 6);
                    b.push(
                        HttpRecord::new(ts, &client, &sh.domain, &sh.ips[0], &format!("/{token}"))
                            .with_user_agent(&ua)
                            .with_redirect_to(&server.domain),
                    );
                    budget = budget.saturating_sub(1);
                }
                // Occasionally follow a two-hop tracking chain into its
                // landing page.
                if !self.chains.is_empty() && rng.gen::<f64>() < 0.02 {
                    let (h1, h2, landing_idx) = &self.chains[rng.gen_range(0..self.chains.len())];
                    let landing = &self.servers[*landing_idx];
                    let token = names::rand_token(rng, 5);
                    b.push(
                        HttpRecord::new(
                            ts,
                            &client,
                            &h1.domain,
                            &h1.ips[0],
                            &format!("/r/{token}"),
                        )
                        .with_user_agent(&ua)
                        .with_redirect_to(&h2.domain),
                    );
                    b.push(
                        HttpRecord::new(
                            ts + 1,
                            &client,
                            &h2.domain,
                            &h2.ips[0],
                            &format!("/r/{token}"),
                        )
                        .with_user_agent(&ua)
                        .with_redirect_to(&landing.domain),
                    );
                    b.push(
                        HttpRecord::new(
                            ts + 2,
                            &client,
                            &landing.domain,
                            &landing.ips[0],
                            "/index.html",
                        )
                        .with_user_agent(&ua),
                    );
                    budget = budget.saturating_sub(3);
                }
                b.push(
                    HttpRecord::new(ts + 1, &client, &server.domain, ip, &format!("/{file}"))
                        .with_user_agent(&ua)
                        .with_resp_bytes(rng.gen_range(2_048..150_000)),
                );
                budget = budget.saturating_sub(1);
                // Mirror-family landings embed their mirrors: the client
                // fetches the same file from every mirror, referred by the
                // landing page (the paper's referrer-group pattern).
                if let Some(&fi) = self.family_of.get(&server_idx) {
                    let fam = &self.families[fi];
                    if fam[0] == server_idx {
                        for &m in &fam[1..] {
                            let mirror = &self.servers[m];
                            let mip = &mirror.ips[rng.gen_range(0..mirror.ips.len())];
                            b.push(
                                HttpRecord::new(
                                    ts + 2,
                                    &client,
                                    &mirror.domain,
                                    mip,
                                    &format!("/{file}"),
                                )
                                .with_user_agent(&ua)
                                .with_referrer(&server.domain)
                                .with_resp_bytes(rng.gen_range(2_048..150_000)),
                            );
                            budget = budget.saturating_sub(1);
                        }
                    }
                }
                // Embedded CDN assets with referrer.
                if !self.cdns.is_empty() && rng.gen::<f64>() < 0.6 {
                    for _ in 0..rng.gen_range(1..3) {
                        let cdn = &self.cdns[rng.gen_range(0..self.cdns.len())];
                        let asset = &cdn.files[rng.gen_range(0..cdn.files.len())];
                        let cip = &cdn.ips[rng.gen_range(0..cdn.ips.len())];
                        b.push(
                            HttpRecord::new(
                                ts + 2,
                                &client,
                                &cdn.domain,
                                cip,
                                &format!("/{asset}"),
                            )
                            .with_user_agent(&ua)
                            .with_referrer(&server.domain)
                            .with_resp_bytes(rng.gen_range(1_024..40_000)),
                        );
                        budget = budget.saturating_sub(1);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_support::rng::DetRng;
    use smash_support::rng::SeedableRng;

    fn world() -> (ScenarioBuilder, BenignWorld) {
        let mut b = ScenarioBuilder::new(40, 86_400);
        let mut rng = DetRng::seed_from_u64(11);
        let w = BenignWorld::build(&mut b, &mut rng, 100, 4, 1.0);
        (b, w)
    }

    #[test]
    fn universe_has_requested_sizes() {
        let (_, w) = world();
        assert_eq!(w.servers.len(), 100);
        assert_eq!(w.cdns.len(), 4);
        assert!(!w.shorteners.is_empty());
    }

    #[test]
    fn domains_are_unique() {
        let (_, w) = world();
        let set: std::collections::HashSet<&String> = w.servers.iter().map(|s| &s.domain).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn every_server_has_index_and_ip() {
        let (_, w) = world();
        for s in &w.servers {
            assert!(s.files.contains(&"index.html".to_string()));
            assert!(!s.ips.is_empty());
        }
    }

    #[test]
    fn whois_registered_for_all_servers() {
        let (b, w) = world();
        let parts = b.finish();
        for s in &w.servers {
            assert!(parts.whois.get(&s.domain).is_some(), "{}", s.domain);
        }
    }

    #[test]
    fn tail_servers_come_from_the_end() {
        let (_, w) = world();
        let tail = w.tail_servers(10);
        assert_eq!(tail.len(), 10);
        assert_eq!(tail[9].domain, w.servers[99].domain);
    }

    #[test]
    fn traffic_volume_tracks_mean() {
        let (mut b, w) = world();
        let mut rng = DetRng::seed_from_u64(12);
        w.emit_traffic(&mut b, &mut rng, 30);
        let n = b.record_count();
        // 40 clients × ~30 requests, plus embeds — sanity band.
        assert!(n > 40 * 15 && n < 40 * 90, "n = {n}");
    }

    #[test]
    fn traffic_is_deterministic() {
        let (mut b1, w1) = world();
        let (mut b2, w2) = world();
        let mut r1 = DetRng::seed_from_u64(5);
        let mut r2 = DetRng::seed_from_u64(5);
        w1.emit_traffic(&mut b1, &mut r1, 10);
        w2.emit_traffic(&mut b2, &mut r2, 10);
        assert_eq!(b1.record_count(), b2.record_count());
        assert_eq!(b1.finish().records, b2.finish().records);
    }

    #[test]
    fn zipf_head_is_popular() {
        let (mut b, w) = world();
        let mut rng = DetRng::seed_from_u64(13);
        w.emit_traffic(&mut b, &mut rng, 50);
        let parts = b.finish();
        let ds = smash_trace::TraceDataset::from_records(parts.records);
        let head = ds
            .server_id(&w.servers[0].domain)
            .expect("head server seen");
        let tail = ds.server_id(&w.servers[99].domain);
        let head_clients = ds.clients_of(head).len();
        let tail_clients = tail.map_or(0, |t| ds.clients_of(t).len());
        assert!(
            head_clients > tail_clients,
            "head {head_clients} tail {tail_clients}"
        );
    }
}
