//! The paper's two false-positive noise sources (§V-A1): torrent tracker
//! herds sharing `scrape.php`, and TeamViewer-style ID-server pools
//! sharing one path. Both are benign, yet correlate strongly enough to
//! surface as SMASH campaigns.

use crate::builder::ScenarioBuilder;
use crate::config::NoiseSpec;
use smash_groundtruth::ActivityCategory;
use smash_support::rng::{Rng, SliceRandom};
use smash_trace::HttpRecord;

/// Emits the configured noise herds. Returns (tracker names,
/// TeamViewer-pool names).
pub fn generate<R: Rng + ?Sized>(
    b: &mut ScenarioBuilder,
    rng: &mut R,
    spec: NoiseSpec,
) -> (Vec<String>, Vec<String>) {
    let trackers = torrent(b, rng, spec.torrent_clients, spec.torrent_trackers);
    let tv = teamviewer(b, rng, spec.teamviewer_clients, spec.teamviewer_servers);
    (trackers, tv)
}

/// P2P clients hitting many trackers with `announce.php`/`scrape.php`,
/// occasionally on shared IPs (multi-tracker hosts).
fn torrent<R: Rng + ?Sized>(
    b: &mut ScenarioBuilder,
    rng: &mut R,
    n_clients: usize,
    n_trackers: usize,
) -> Vec<String> {
    if n_clients == 0 || n_trackers == 0 {
        return Vec::new();
    }
    let trackers: Vec<String> = (0..n_trackers)
        .map(|i| format!("tracker{i}swarm.org"))
        .collect();
    // Some tracker hosts run several trackers: small shared IP pool.
    let ips: Vec<String> = (0..(n_trackers / 3).max(1))
        .map(|_| b.benign_ip())
        .collect();
    let tracker_ip: Vec<String> = (0..n_trackers)
        .map(|_| {
            ips.choose(rng)
                .expect("benign ip pool is non-empty")
                .clone()
        })
        .collect();
    let peers = b.pick_bots(rng, n_clients);
    for p in &peers {
        for (t, tip) in trackers.iter().zip(&tracker_ip) {
            if rng.gen::<f64>() < 0.25 {
                continue;
            }
            let hash = crate::names::rand_token(rng, 20);
            let ts = b.ts(rng);
            let file = if rng.gen::<bool>() {
                "scrape.php"
            } else {
                "announce.php"
            };
            b.push(
                HttpRecord::new(ts, p, t, tip, &format!("/{file}?info_hash={hash}"))
                    .with_user_agent("uTorrent/3.2"),
            );
        }
    }
    let cid = b.begin_campaign("torrent-noise", ActivityCategory::TorrentNoise);
    for t in &trackers {
        b.label_server(t, cid, ActivityCategory::TorrentNoise);
    }
    trackers
}

/// A TeamViewer-like service: one organization, a pool of ID servers all
/// answering the same path — shared clients + shared file + shared Whois.
fn teamviewer<R: Rng + ?Sized>(
    b: &mut ScenarioBuilder,
    rng: &mut R,
    n_clients: usize,
    n_servers: usize,
) -> Vec<String> {
    if n_clients == 0 || n_servers == 0 {
        return Vec::new();
    }
    let servers: Vec<String> = (0..n_servers)
        .map(|i| format!("ping{i}viewer.com"))
        .collect();
    let ips: Vec<String> = (0..n_servers).map(|_| b.benign_ip()).collect();
    // One company registered the whole pool: legitimately correlated Whois.
    b.register_whois_correlated(rng, &servers);
    let users = b.pick_bots(rng, n_clients);
    for u in &users {
        for (s, sip) in servers.iter().zip(&ips) {
            if rng.gen::<f64>() < 0.25 {
                continue;
            }
            let ts = b.ts(rng);
            b.push(
                HttpRecord::new(
                    ts,
                    u,
                    s,
                    sip,
                    &format!(
                        "/din.aspx?client=DynGate&id={}",
                        rng.gen_range(10_000..99_999)
                    ),
                )
                .with_user_agent("DynGate"),
            );
        }
    }
    let cid = b.begin_campaign("teamviewer-noise", ActivityCategory::TeamViewerNoise);
    for s in &servers {
        b.label_server(s, cid, ActivityCategory::TeamViewerNoise);
    }
    servers
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_support::rng::DetRng;
    use smash_support::rng::SeedableRng;
    use smash_trace::TraceDataset;

    fn run() -> (ScenarioBuilder, Vec<String>, Vec<String>) {
        let mut b = ScenarioBuilder::new(60, 86_400);
        let mut rng = DetRng::seed_from_u64(9);
        let spec = NoiseSpec {
            torrent_clients: 8,
            torrent_trackers: 30,
            teamviewer_clients: 10,
            teamviewer_servers: 15,
        };
        let (tr, tv) = generate(&mut b, &mut rng, spec);
        (b, tr, tv)
    }

    #[test]
    fn herd_sizes() {
        let (_, tr, tv) = run();
        assert_eq!(tr.len(), 30);
        assert_eq!(tv.len(), 15);
    }

    #[test]
    fn trackers_share_scrape_php() {
        let (b, tr, _) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let mut with_scrape = 0;
        for t in &tr {
            if let Some(sid) = ds.server_id(t) {
                let files: Vec<&str> = ds.files_of(sid).iter().map(|&f| ds.file_name(f)).collect();
                if files.contains(&"scrape.php") {
                    with_scrape += 1;
                }
            }
        }
        assert!(with_scrape > 15, "{with_scrape}");
    }

    #[test]
    fn noise_flag_set_in_truth() {
        let (b, tr, tv) = run();
        let truth = b.finish().truth;
        assert!(truth.is_noise(&tr[0]));
        assert!(truth.is_noise(&tv[0]));
        assert!(!truth.involved_in_malicious_activity(&tr[0]));
    }

    #[test]
    fn teamviewer_pool_whois_correlated() {
        let (b, _, tv) = run();
        let whois = b.finish().whois;
        assert!(whois.associated(&tv[0], &tv[1]));
    }

    #[test]
    fn zero_spec_emits_nothing() {
        let mut b = ScenarioBuilder::new(10, 86_400);
        let mut rng = DetRng::seed_from_u64(1);
        let (tr, tv) = generate(&mut b, &mut rng, NoiseSpec::none());
        assert!(tr.is_empty() && tv.is_empty());
        assert_eq!(b.record_count(), 0);
    }
}
