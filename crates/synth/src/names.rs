//! Deterministic name generators: domains, DGA names, obfuscated
//! filenames, Whois identities, user-agents.

use smash_support::rng::{Rng, SliceRandom};

const TLDS: &[&str] = &["com", "net", "org", "info", "biz"];
const WORDS: &[&str] = &[
    "blue", "river", "shop", "tech", "media", "cloud", "data", "home", "travel", "photo", "music",
    "game", "news", "food", "auto", "health", "sport", "garden", "craft", "book",
];

/// Random lowercase alphanumeric string of length `len`.
pub fn rand_token<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..len)
        .map(|_| *ALPHABET.choose(rng).expect("alphabet is non-empty") as char)
        .collect()
}

/// A plausible benign second-level domain, e.g. `blueriver42.com`.
pub fn benign_domain<R: Rng + ?Sized>(rng: &mut R) -> String {
    let a = WORDS.choose(rng).expect("word list is non-empty");
    let b = WORDS.choose(rng).expect("word list is non-empty");
    let n = rng.gen_range(0..1000);
    let tld = TLDS.choose(rng).expect("tld list is non-empty");
    format!("{a}{b}{n}.{tld}")
}

/// A malicious throw-away domain, e.g. `xk3f9qa2.info`.
pub fn shady_domain<R: Rng + ?Sized>(rng: &mut R) -> String {
    let tld = TLDS.choose(rng).expect("tld list is non-empty");
    let len = rng.gen_range(6..12);
    format!("{}.{tld}", rand_token(rng, len))
}

/// A Zeus-style DGA family: a shared stem with a per-domain mutation on a
/// free second-level zone, e.g. `4k0t155m.cz.cc` / `4k0t177m.cz.cc`.
///
/// All names of one family share the stem and differ in two digits, so the
/// family is *visibly* related (the paper's Table X) yet every name is
/// distinct.
pub fn dga_family<R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<String> {
    let stem = rand_token(rng, 4);
    let suffix: char = (b'a' + rng.gen_range(0..26u8)) as char;
    (0..count)
        .map(|i| format!("{stem}1{}{}m{suffix}.cz.cc", i % 10, (i / 10) % 10))
        .collect()
}

/// An obfuscated long filename (paper Fig. 4): `len` characters drawn from
/// a fixed per-campaign alphabet so sibling names share a character
/// distribution (detectable by the eq. 6 cosine) without any substring
/// match.
pub fn obfuscated_filename<R: Rng + ?Sized>(rng: &mut R, alphabet: &[u8], len: usize) -> String {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let body: String = (0..len)
        .map(|_| *alphabet.choose(rng).expect("alphabet is non-empty") as char)
        .collect();
    format!("{body}.php")
}

/// Picks a per-campaign alphabet of `k` distinct characters for
/// [`obfuscated_filename`].
pub fn obfuscation_alphabet<R: Rng + ?Sized>(rng: &mut R, k: usize) -> Vec<u8> {
    const POOL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    let mut pool: Vec<u8> = POOL.to_vec();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k.min(pool.len()) {
        let i = rng.gen_range(0..pool.len());
        out.push(pool.swap_remove(i));
    }
    out
}

/// A person-like registrant name.
pub fn registrant<R: Rng + ?Sized>(rng: &mut R) -> String {
    const FIRST: &[&str] = &[
        "ivan", "maria", "chen", "raj", "olga", "juan", "amir", "lena",
    ];
    const LAST: &[&str] = &[
        "petrov", "garcia", "wang", "singh", "novak", "silva", "ali", "berg",
    ];
    format!(
        "{} {}{}",
        FIRST.choose(rng).expect("name list is non-empty"),
        LAST.choose(rng).expect("name list is non-empty"),
        rng.gen_range(0..100)
    )
}

/// A street-address-like string.
pub fn address<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!(
        "{} {} st",
        rng.gen_range(1..999),
        WORDS.choose(rng).expect("word list is non-empty")
    )
}

/// A phone-number-like string.
pub fn phone<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!(
        "+{}-{:03}-{:07}",
        rng.gen_range(1..99),
        rng.gen_range(0..999),
        rng.gen_range(0..9_999_999)
    )
}

/// A hosting-provider name-server pair like `ns1.hostpool7.net`.
pub fn name_server<R: Rng + ?Sized>(rng: &mut R, provider: u32) -> String {
    format!("ns{}.hostpool{provider}.net", rng.gen_range(1..3))
}

/// A benign browser user-agent (a handful of realistic variants).
pub fn browser_ua<R: Rng + ?Sized>(rng: &mut R) -> String {
    const UAS: &[&str] = &[
        "Mozilla/5.0 (Windows NT 6.1) Firefox/15.0",
        "Mozilla/5.0 (Windows NT 6.1) Chrome/21.0",
        "Mozilla/5.0 (Macintosh) Safari/536.25",
        "Mozilla/4.0 (compatible; MSIE 8.0)",
        "Opera/9.80 (Windows NT 6.1)",
    ];
    UAS.choose(rng).expect("ua list is non-empty").to_string()
}

/// A benign page filename for server-specific content.
///
/// Includes a random token so two servers virtually never share a
/// generated page name by accident — accidental cross-server file
/// collisions would look exactly like a campaign's shared script.
/// Genuinely common names come from [`common_page_file`] instead.
pub fn page_file<R: Rng + ?Sized>(rng: &mut R) -> String {
    const EXT: &[&str] = &["html", "php", "htm", "asp"];
    format!(
        "{}{}{}.{}",
        WORDS.choose(rng).expect("word list is non-empty"),
        rand_token(rng, 4),
        rng.gen_range(0..100),
        EXT.choose(rng).expect("extension list is non-empty")
    )
}

/// Web-wide common page/asset names (CMS boilerplate): the realistic
/// low-signal file sharing among unrelated benign servers.
pub fn common_page_file<R: Rng + ?Sized>(rng: &mut R) -> String {
    const COMMON: &[&str] = &[
        "about.html",
        "contact.html",
        "faq.html",
        "news.html",
        "search.php",
        "style.css",
        "main.js",
        "banner.jpg",
        "header.png",
        "footer.php",
        "login.html",
        "terms.html",
        "privacy.html",
        "sitemap.xml",
        "feed.xml",
        "gallery.html",
        "products.html",
        "services.html",
        "blog.html",
        "archive.html",
        "print.css",
        "menu.js",
        "logo.gif",
        "background.jpg",
        "favicon.ico",
        "form.php",
        "press.html",
        "jobs.html",
        "help.html",
        "team.html",
        "history.html",
        "map.html",
        "events.html",
        "downloads.html",
        "links.html",
        "reviews.html",
        "pricing.html",
        "order.php",
        "cart.php",
        "checkout.php",
        "account.php",
        "register.php",
        "reset.php",
        "rss.xml",
        "atom.xml",
        "robots.txt",
        "humans.txt",
        "video.html",
        "audio.html",
        "photos.html",
        "calendar.html",
        "weather.html",
        "stats.html",
        "forum.php",
        "wiki.html",
        "docs.html",
        "api.html",
        "mobile.html",
        "amp.html",
        "print.html",
    ];
    COMMON
        .choose(rng)
        .expect("common page list is non-empty")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_support::rng::DetRng;
    use smash_support::rng::SeedableRng;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(42)
    }

    #[test]
    fn benign_domains_have_tld() {
        let mut r = rng();
        for _ in 0..20 {
            let d = benign_domain(&mut r);
            assert!(d.contains('.'), "{d}");
            assert_eq!(d.split('.').count(), 2);
        }
    }

    #[test]
    fn dga_family_shares_stem_and_zone() {
        let mut r = rng();
        let fam = dga_family(&mut r, 8);
        assert_eq!(fam.len(), 8);
        let stem = &fam[0][..4];
        for d in &fam {
            assert!(d.starts_with(stem), "{d}");
            assert!(d.ends_with(".cz.cc"));
        }
        let distinct: std::collections::HashSet<&String> = fam.iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn obfuscated_names_share_charset() {
        let mut r = rng();
        let alpha = obfuscation_alphabet(&mut r, 8);
        let a = obfuscated_filename(&mut r, &alpha, 100);
        let b = obfuscated_filename(&mut r, &alpha, 100);
        assert_ne!(a, b);
        assert!(a.ends_with(".php"));
        assert_eq!(a.len(), 104);
        // High charset cosine expected for long names over the same
        // 8-letter alphabet.
        let cos = smash_trace::uri::charset_cosine(&a, &b);
        assert!(cos > 0.8, "cosine {cos}");
    }

    #[test]
    fn alphabet_has_distinct_chars() {
        let mut r = rng();
        let alpha = obfuscation_alphabet(&mut r, 10);
        let set: std::collections::HashSet<u8> = alpha.iter().copied().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = rng();
        let mut r2 = rng();
        assert_eq!(benign_domain(&mut r1), benign_domain(&mut r2));
        assert_eq!(registrant(&mut r1), registrant(&mut r2));
        assert_eq!(phone(&mut r1), phone(&mut r2));
    }

    #[test]
    fn token_length_and_charset() {
        let mut r = rng();
        let t = rand_token(&mut r, 12);
        assert_eq!(t.len(), 12);
        assert!(t
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
    }
}
