//! Generator configuration: world size, campaign roster, noise.

/// How visible a campaign is to the simulated external label sources.
///
/// Fractions are per-server probabilities. The paper's zero-day claim
/// requires `ids2013 >= ids2012`: servers the 2013 signatures catch that
/// the 2012 set missed are SMASH's "detected before the update" wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionCoverage {
    /// Fraction of campaign servers the 2012 IDS signature set labels.
    pub ids2012: f64,
    /// Fraction the 2013 IDS set labels (includes the 2012 fraction).
    pub ids2013: f64,
    /// Fraction the blacklists confirm.
    pub blacklist: f64,
    /// Fraction of servers already taken down (existence probes fail and
    /// their trace responses are HTTP errors).
    pub defunct: f64,
}

impl DetectionCoverage {
    /// Typical coverage: IDS sees little, blacklists see some, a few
    /// servers are already dead — matching the paper's observation that
    /// ~86.5% of inferred servers were unknown to IDS and blacklists.
    pub fn typical() -> Self {
        Self {
            ids2012: 0.03,
            ids2013: 0.10,
            blacklist: 0.10,
            defunct: 0.10,
        }
    }

    /// Entirely invisible to all label sources (candidate for the
    /// "suspicious" bucket via the existence check).
    pub fn invisible() -> Self {
        Self {
            ids2012: 0.0,
            ids2013: 0.0,
            blacklist: 0.0,
            defunct: 0.75,
        }
    }

    /// A well-known threat: fully covered by both IDS vintages.
    pub fn well_known() -> Self {
        Self {
            ids2012: 1.0,
            ids2013: 1.0,
            blacklist: 0.6,
            defunct: 0.0,
        }
    }

    /// A zero-day: the 2012 set misses everything, the 2013 set catches
    /// all of it (the paper's Zeus case, Table X).
    pub fn zero_day() -> Self {
        Self {
            ids2012: 0.0,
            ids2013: 1.0,
            blacklist: 0.1,
            defunct: 0.0,
        }
    }
}

/// One planted campaign.
///
/// Every variant carries the number of *bot* clients driving it; the
/// paper observes 75% of campaigns have a single infected client, so
/// presets plant many `bots: 1` campaigns.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignSpec {
    /// Domain-flux C&C: many domains, shared IP pool, one handler script
    /// (paper Fig. 1(a)). `obfuscated` switches the handler filename to
    /// per-server long obfuscated names sharing a character set (Fig. 4).
    CncFlux {
        /// Campaign name.
        name: String,
        /// Number of C&C domains.
        domains: usize,
        /// Number of infected clients.
        bots: usize,
        /// `true` to use obfuscated long filenames instead of one script.
        obfuscated: bool,
        /// Label-source visibility.
        coverage: DetectionCoverage,
    },
    /// Zeus-style DGA herd: sibling domain names on a free zone, same IP,
    /// same `login.php` (paper Table X).
    Dga {
        /// Campaign name.
        name: String,
        /// Number of DGA domains.
        domains: usize,
        /// Number of infected clients.
        bots: usize,
        /// Label-source visibility.
        coverage: DetectionCoverage,
    },
    /// Bagle-style two-stage campaign: compromised download servers
    /// (`/images/file.txt`) plus C&C servers (`news.php` with a fixed
    /// parameter pattern) driven by the same bots (paper Table VII).
    TwoStage {
        /// Campaign name.
        name: String,
        /// Number of compromised download servers.
        download_servers: usize,
        /// Number of C&C servers.
        cnc_servers: usize,
        /// Number of infected clients.
        bots: usize,
        /// Label-source visibility.
        coverage: DetectionCoverage,
    },
    /// Sality-style campaign: two C&C domains sharing IPs + Whois and
    /// requesting `/`, plus compromised download servers serving `.gif`
    /// payloads, all with the `KUKU` user-agent (paper Table VIII).
    Sality {
        /// Campaign name.
        name: String,
        /// Number of compromised download servers.
        download_servers: usize,
        /// Number of infected clients.
        bots: usize,
        /// Label-source visibility.
        coverage: DetectionCoverage,
    },
    /// ZmEu-style scanning: bots probe benign servers for
    /// `setup.php` under phpMyAdmin-like paths (paper Fig. 1(b)).
    Scanning {
        /// Campaign name.
        name: String,
        /// Number of scanned benign targets.
        targets: usize,
        /// Number of scanning clients.
        bots: usize,
        /// Label-source visibility.
        coverage: DetectionCoverage,
    },
    /// Wordpress iframe injection: bots hit `sm3.php` under varying
    /// `wp-content` paths on many benign servers with user-agent `-`
    /// (paper Table IX).
    Iframe {
        /// Campaign name.
        name: String,
        /// Number of injected benign servers.
        targets: usize,
        /// Number of attacking clients.
        bots: usize,
        /// Label-source visibility.
        coverage: DetectionCoverage,
    },
    /// A small phishing herd: few domains, shared Whois, same landing
    /// file.
    Phishing {
        /// Campaign name.
        name: String,
        /// Number of phishing domains.
        domains: usize,
        /// Number of victim clients.
        bots: usize,
        /// Label-source visibility.
        coverage: DetectionCoverage,
    },
    /// A drop-zone herd: few upload endpoints sharing IPs and the upload
    /// script.
    DropZone {
        /// Campaign name.
        name: String,
        /// Number of drop-zone domains.
        domains: usize,
        /// Number of exfiltrating clients.
        bots: usize,
        /// Label-source visibility.
        coverage: DetectionCoverage,
    },
}

impl CampaignSpec {
    /// The campaign's display name.
    pub fn name(&self) -> &str {
        match self {
            CampaignSpec::CncFlux { name, .. }
            | CampaignSpec::Dga { name, .. }
            | CampaignSpec::TwoStage { name, .. }
            | CampaignSpec::Sality { name, .. }
            | CampaignSpec::Scanning { name, .. }
            | CampaignSpec::Iframe { name, .. }
            | CampaignSpec::Phishing { name, .. }
            | CampaignSpec::DropZone { name, .. } => name,
        }
    }

    /// Number of bot clients driving the campaign.
    pub fn bots(&self) -> usize {
        match self {
            CampaignSpec::CncFlux { bots, .. }
            | CampaignSpec::Dga { bots, .. }
            | CampaignSpec::TwoStage { bots, .. }
            | CampaignSpec::Sality { bots, .. }
            | CampaignSpec::Scanning { bots, .. }
            | CampaignSpec::Iframe { bots, .. }
            | CampaignSpec::Phishing { bots, .. }
            | CampaignSpec::DropZone { bots, .. } => *bots,
        }
    }
}

/// The paper's two false-positive noise sources (§V-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseSpec {
    /// P2P clients requesting `scrape.php` from many trackers.
    pub torrent_clients: usize,
    /// Torrent tracker servers.
    pub torrent_trackers: usize,
    /// Clients of the TeamViewer-style ID service.
    pub teamviewer_clients: usize,
    /// Pool size of TeamViewer-style ID servers.
    pub teamviewer_servers: usize,
}

impl NoiseSpec {
    /// No noise at all.
    pub fn none() -> Self {
        Self {
            torrent_clients: 0,
            torrent_trackers: 0,
            teamviewer_clients: 0,
            teamviewer_servers: 0,
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// RNG seed; every output is a pure function of the config.
    pub seed: u64,
    /// Number of benign clients (bots are drawn from this pool — infected
    /// machines still browse the benign web).
    pub n_clients: usize,
    /// Size of the benign server universe.
    pub n_benign_servers: usize,
    /// Number of hyper-popular CDN second-level domains (IDF-filter
    /// exercise material).
    pub n_cdn: usize,
    /// Zipf exponent of benign server popularity.
    pub zipf_exponent: f64,
    /// Mean browsing requests per client per day.
    pub mean_client_requests: usize,
    /// Length of the simulated day in seconds.
    pub day_seconds: u64,
    /// Planted campaigns.
    pub campaigns: Vec<CampaignSpec>,
    /// Planted noise herds.
    pub noise: NoiseSpec,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            n_clients: 300,
            n_benign_servers: 800,
            n_cdn: 6,
            zipf_exponent: 1.0,
            mean_client_requests: 40,
            day_seconds: 86_400,
            campaigns: Vec::new(),
            noise: NoiseSpec::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_presets_are_ordered() {
        for c in [
            DetectionCoverage::typical(),
            DetectionCoverage::invisible(),
            DetectionCoverage::well_known(),
            DetectionCoverage::zero_day(),
        ] {
            assert!(c.ids2013 >= c.ids2012, "{c:?}");
            assert!((0.0..=1.0).contains(&c.blacklist));
            assert!((0.0..=1.0).contains(&c.defunct));
        }
    }

    #[test]
    fn spec_accessors() {
        let s = CampaignSpec::Dga {
            name: "zeus".into(),
            domains: 8,
            bots: 3,
            coverage: DetectionCoverage::zero_day(),
        };
        assert_eq!(s.name(), "zeus");
        assert_eq!(s.bots(), 3);
    }

    #[test]
    fn default_config_is_clean() {
        let c = SynthConfig::default();
        assert!(c.campaigns.is_empty());
        assert_eq!(c.noise, NoiseSpec::none());
        assert!(c.n_clients > 0);
    }
}
