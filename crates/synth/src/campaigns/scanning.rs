//! ZmEu-style web scanning (paper Fig. 1(b)): bots probe many benign
//! servers for the vulnerable `setup.php` of phpMyAdmin under varying
//! install paths. The *targets* form the attacking-activity campaign.

use super::CampaignSeeds;
use crate::benign::BenignWorld;
use crate::builder::ScenarioBuilder;
use crate::config::DetectionCoverage;
use smash_groundtruth::{ActivityCategory, Signature};
use smash_support::rng::Rng;
use smash_trace::HttpRecord;

const ADMIN_PATHS: &[&str] = &[
    "/phpMyAdmin/scripts/setup.php",
    "/phpmyadmin/scripts/setup.php",
    "/pma/scripts/setup.php",
    "/myadmin/scripts/setup.php",
    "/mysql/scripts/setup.php",
    "/db/scripts/setup.php",
];

/// Generates one scanning campaign over tail (unpopular) benign servers.
/// Returns the scanned target names.
pub fn generate(
    b: &mut ScenarioBuilder,
    world: &BenignWorld,
    name: &str,
    n_targets: usize,
    n_bots: usize,
    coverage: DetectionCoverage,
    seeds: CampaignSeeds,
) -> Vec<String> {
    let (mut id_rng, mut infra, mut traffic) = seeds.rngs();
    let bots = super::pick_campaign_bots(b, &mut id_rng, n_bots, seeds);
    // Targets from the unpopular tail: in practice scanners sweep address
    // space, hitting small sites whose benign client sets are tiny.
    // Scanning sweeps the even-parity half of the tail, iframe injection
    // the odd half: two attacking campaigns must never hit the same
    // victim, or the shared target fuses their herds.
    let tail = world.tail_partition((n_targets * 4).max(n_targets), 0);
    let mut idx: Vec<usize> = (0..tail.len()).collect();
    for i in (1..idx.len()).rev() {
        idx.swap(i, infra.gen_range(0..=i));
    }
    let targets: Vec<&crate::benign::BenignServer> =
        idx.into_iter().take(n_targets).map(|i| tail[i]).collect();
    let target_names: Vec<String> = targets.iter().map(|t| t.domain.clone()).collect();

    // IDS/blacklist coverage of scanned victims is partial, as in the
    // paper's attacking campaigns (labels mark "this server was attacked").
    let _ = b.apply_coverage(&mut infra, &target_names, coverage, name);

    let ua = "ZmEu";
    let bursts = super::BurstSchedule::pick(&mut infra, b.day_seconds, 1);
    for bot in &bots {
        for t in &targets {
            for _ in 0..traffic.gen_range(1..=2) {
                let ts = bursts.sample(&mut traffic);
                let path = ADMIN_PATHS[traffic.gen_range(0..ADMIN_PATHS.len())];
                let ip = &t.ips[traffic.gen_range(0..t.ips.len())];
                // Almost no target actually has phpMyAdmin installed.
                let status = if traffic.gen::<f64>() < 0.05 {
                    200
                } else {
                    404
                };
                b.push(
                    HttpRecord::new(ts, bot, &t.domain, ip, path)
                        .with_user_agent(ua)
                        .with_status(status),
                );
            }
        }
    }

    let cid = b.begin_campaign(name, ActivityCategory::WebScanner);
    for t in &target_names {
        b.label_server(t, cid, ActivityCategory::WebScanner);
    }
    // A full content rule for the probe exists only when coverage says
    // the threat is fully known to that signature vintage.
    if coverage.ids2013 >= 1.0 {
        b.add_pattern_signature(
            Signature::new(name)
                .with_uri_file("setup.php")
                .with_user_agent(ua),
            coverage.ids2012 >= 1.0,
        );
    }
    target_names
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_support::rng::DetRng;
    use smash_support::rng::SeedableRng;
    use smash_trace::TraceDataset;

    fn run() -> (ScenarioBuilder, Vec<String>) {
        let mut b = ScenarioBuilder::new(50, 86_400);
        let mut wrng = DetRng::seed_from_u64(1);
        let world = BenignWorld::build(&mut b, &mut wrng, 120, 2, 1.0);
        let targets = generate(
            &mut b,
            &world,
            "zmeu",
            15,
            2,
            DetectionCoverage::well_known(),
            CampaignSeeds::fixed(3),
        );
        (b, targets)
    }

    #[test]
    fn targets_are_distinct_benign_servers() {
        let (_, targets) = run();
        assert_eq!(targets.len(), 15);
        let set: std::collections::HashSet<&String> = targets.iter().collect();
        assert_eq!(set.len(), 15);
    }

    #[test]
    fn targets_share_setup_php() {
        let (b, targets) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        for t in &targets {
            let sid = ds.server_id(t).unwrap();
            let files: Vec<&str> = ds.files_of(sid).iter().map(|&f| ds.file_name(f)).collect();
            assert_eq!(files, vec!["setup.php"], "{t}");
        }
    }

    #[test]
    fn probes_mostly_fail() {
        let (b, targets) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let sid = ds.server_id(&targets[0]).unwrap();
        assert!(ds.error_rate_of(sid) > 0.5);
    }

    #[test]
    fn labeled_as_attacking_activity() {
        let (b, targets) = run();
        let truth = b.finish().truth;
        let t = truth.server(&targets[0]).unwrap();
        assert_eq!(t.category, ActivityCategory::WebScanner);
        assert_eq!(
            t.category.kind(),
            Some(smash_groundtruth::ActivityKind::Attacking)
        );
    }

    #[test]
    fn pattern_signature_registered() {
        let (b, _) = run();
        let parts = b.finish();
        assert!(parts
            .sigs2012
            .iter()
            .any(|s| s.uri_file.as_deref() == Some("setup.php")));
    }
}
