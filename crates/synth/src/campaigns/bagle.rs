//! Bagle-style two-stage campaigns (paper Table VII): compromised
//! download servers serving `/images/file.txt`, plus C&C servers handling
//! `news.php?p=[]&id=[]&e=[]` — driven by the same bots. The ASH
//! correlation step finds the two stages as separate herds; campaign
//! inference merges them through the shared client set.

use super::{unique_benign_domains, unique_shady_domains, CampaignSeeds};
use crate::builder::ScenarioBuilder;
use crate::config::DetectionCoverage;
use smash_groundtruth::ActivityCategory;
use smash_support::rng::Rng;
use smash_trace::HttpRecord;

/// Generates one two-stage campaign. Returns all server names
/// (download servers first, then C&C).
pub fn generate(
    b: &mut ScenarioBuilder,
    name: &str,
    n_download: usize,
    n_cnc: usize,
    n_bots: usize,
    coverage: DetectionCoverage,
    seeds: CampaignSeeds,
) -> Vec<String> {
    let (mut id_rng, mut infra, mut traffic) = seeds.rngs();
    let bots = super::pick_campaign_bots(b, &mut id_rng, n_bots, seeds);

    // Stage 1: compromised benign-looking sites, diverse Whois and IPs —
    // reputation systems can't catch these (paper §V-D1).
    let downloads = unique_benign_domains(&mut infra, n_download);
    let download_ips: Vec<String> = (0..n_download).map(|_| b.benign_ip()).collect();
    for d in &downloads {
        let provider = b.next_provider();
        b.register_whois_random(&mut infra, d, provider);
    }
    // Download servers are essentially never labeled (paper: "None of the
    // downloading servers was detected by IDS or blacklists").
    let dl_cov = DetectionCoverage {
        ids2012: 0.0,
        ids2013: 0.0,
        blacklist: 0.02,
        defunct: 0.05,
    };
    let dl_defunct = b.apply_coverage(&mut infra, &downloads, dl_cov, name);

    // Stage 2: dedicated C&C servers with shared infrastructure.
    let cncs = unique_shady_domains(&mut infra, n_cnc);
    let pool = b.campaign_ip_pool((n_cnc / 4).max(1));
    b.register_whois_correlated(&mut infra, &cncs);
    let cnc_defunct = b.apply_coverage(&mut infra, &cncs, coverage, name);

    let dl_ua = "Mozilla/4.0 (compatible; MSIE 7.0; Windows NT 5.1)";
    let cnc_ua = "Internet Exploder";
    let bursts = super::BurstSchedule::pick(&mut infra, b.day_seconds, 3);
    // One encrypted payload, one size — served identically by every
    // compromised host (the §VI payload-similarity signal).
    let payload_bytes: u32 = infra.gen_range(30_000u32..90_000) & !63;

    for (bi, bot) in bots.iter().enumerate() {
        // First the encrypted payload download… (the first bot downloads
        // from everything so every server appears in the trace).
        for (i, d) in downloads.iter().enumerate() {
            if bi > 0 && traffic.gen::<f64>() < 0.05 {
                continue;
            }
            let ts = bursts.sample(&mut traffic);
            let status = if dl_defunct.contains(d) { 404 } else { 200 };
            b.push(
                HttpRecord::new(ts, bot, d, &download_ips[i], "/images/file.txt")
                    .with_user_agent(dl_ua)
                    .with_status(status)
                    .with_resp_bytes(payload_bytes + traffic.gen_range(0u32..64)),
            );
        }
        // …then C&C polling with the fixed parameter pattern.
        for c in &cncs {
            for _ in 0..traffic.gen_range(1..=2) {
                let ts = bursts.sample(&mut traffic);
                let ip = &pool[traffic.gen_range(0..pool.len())];
                let uri = format!(
                    "/images/news.php?p={}&id={}&e=0",
                    traffic.gen_range(10_000..99_999),
                    traffic.gen_range(10_000_000..99_999_999)
                );
                let status = if cnc_defunct.contains(c) { 0 } else { 200 };
                b.push(
                    HttpRecord::new(ts, bot, c, ip, &uri)
                        .with_user_agent(cnc_ua)
                        .with_status(status)
                        .with_resp_bytes(traffic.gen_range(300..900)),
                );
            }
        }
    }

    let cid = b.begin_campaign(name, ActivityCategory::CommandAndControl);
    for d in &downloads {
        b.label_server(d, cid, ActivityCategory::Downloading);
    }
    for c in &cncs {
        b.label_server(c, cid, ActivityCategory::CommandAndControl);
    }
    b.mark_defunct(&dl_defunct);
    b.mark_defunct(&cnc_defunct);

    let mut all = downloads;
    all.extend(cncs);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_trace::TraceDataset;

    fn run() -> (ScenarioBuilder, Vec<String>) {
        let mut b = ScenarioBuilder::new(80, 86_400);
        let servers = generate(
            &mut b,
            "bagle",
            10,
            12,
            4,
            DetectionCoverage::typical(),
            CampaignSeeds::fixed(21),
        );
        (b, servers)
    }

    #[test]
    fn stage_counts() {
        let (_, servers) = run();
        assert_eq!(servers.len(), 22);
    }

    #[test]
    fn both_stages_share_bots() {
        let (b, servers) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let dl = ds.server_id(&servers[0]).unwrap();
        let cnc = ds.server_id(&servers[21]).unwrap();
        let cd: std::collections::HashSet<u32> = ds.clients_of(dl).iter().copied().collect();
        let cc: std::collections::HashSet<u32> = ds.clients_of(cnc).iter().copied().collect();
        assert!(!cd.is_disjoint(&cc));
    }

    #[test]
    fn download_servers_share_file_txt() {
        let (b, servers) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        for d in &servers[..10] {
            if let Some(sid) = ds.server_id(d) {
                let files: Vec<&str> = ds.files_of(sid).iter().map(|&f| ds.file_name(f)).collect();
                assert_eq!(files, vec!["file.txt"], "{d}");
            }
        }
    }

    #[test]
    fn cnc_servers_share_param_pattern() {
        let (b, servers) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let sid = ds.server_id(&servers[15]).unwrap();
        let r = ds.records_of(sid).next().unwrap();
        assert_eq!(ds.param_pattern_name(r.param_pattern), "p=[]&id=[]&e=[]");
    }

    #[test]
    fn downloads_have_diverse_whois_cncs_correlated() {
        let (b, servers) = run();
        let whois = b.finish().whois;
        assert!(!whois.associated(&servers[0], &servers[1]));
        assert!(whois.associated(&servers[12], &servers[13]));
    }

    #[test]
    fn one_campaign_two_categories() {
        let (b, servers) = run();
        let truth = b.finish().truth;
        let t_dl = truth.server(&servers[0]).unwrap();
        let t_cc = truth.server(&servers[15]).unwrap();
        assert_eq!(t_dl.campaign, t_cc.campaign);
        assert_eq!(t_dl.category, ActivityCategory::Downloading);
        assert_eq!(t_cc.category, ActivityCategory::CommandAndControl);
    }
}
