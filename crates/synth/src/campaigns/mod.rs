//! Planted malicious campaigns, one module per family.
//!
//! Every generator follows the builder protocol (names → coverage →
//! traffic → truth) and draws from three separate seeds:
//!
//! * `identity` — which clients are the bots. Fixed across a week for
//!   both persistent *and* agile campaigns (the infected machines don't
//!   change).
//! * `infra` — domains, IPs, Whois. Fixed for persistent campaigns;
//!   rotated daily for agile ones (the paper observes most campaigns
//!   change servers every day, Fig. 7).
//! * `traffic` — request timing/volume; varies every day.

pub mod bagle;
pub mod cnc;
pub mod dga;
pub mod dropzone;
pub mod iframe;
pub mod phishing;
pub mod sality;
pub mod scanning;

use crate::benign::BenignWorld;
use crate::builder::ScenarioBuilder;
use crate::config::CampaignSpec;
use smash_support::rng::DetRng;
use smash_support::rng::SeedableRng;

/// The three seeds driving one campaign instance (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSeeds {
    /// Bot selection.
    pub identity: u64,
    /// Domains, IPs, Whois.
    pub infra: u64,
    /// Request timing and volume.
    pub traffic: u64,
    /// Restricts bot picks to clients `lo..hi`. Scenario presets hand
    /// each campaign a disjoint block so two campaigns never share an
    /// infected machine by accident (with hundreds of clients and dozens
    /// of bots, birthday collisions would otherwise fuse campaigns).
    pub bot_range: Option<(usize, usize)>,
}

impl CampaignSeeds {
    /// All three seeds derived from one value (single-day scenarios).
    pub fn fixed(seed: u64) -> Self {
        Self {
            identity: seed ^ 0x1D,
            infra: seed ^ 0x2F,
            traffic: seed ^ 0x3A,
            bot_range: None,
        }
    }

    /// Restricts bot selection to the client block `lo..hi`.
    pub fn with_bot_range(mut self, lo: usize, hi: usize) -> Self {
        self.bot_range = Some((lo, hi));
        self
    }

    /// RNGs for the three seeds.
    pub(crate) fn rngs(self) -> (DetRng, DetRng, DetRng) {
        (
            DetRng::seed_from_u64(self.identity),
            DetRng::seed_from_u64(self.infra),
            DetRng::seed_from_u64(self.traffic),
        )
    }
}

/// Generates one campaign into `b`, dispatching on the spec variant.
///
/// Returns the campaign's server names (useful for week-level analyses).
pub fn generate(
    b: &mut ScenarioBuilder,
    world: &BenignWorld,
    spec: &CampaignSpec,
    seeds: CampaignSeeds,
) -> Vec<String> {
    match spec {
        CampaignSpec::CncFlux {
            name,
            domains,
            bots,
            obfuscated,
            coverage,
        } => cnc::generate(b, name, *domains, *bots, *obfuscated, *coverage, seeds),
        CampaignSpec::Dga {
            name,
            domains,
            bots,
            coverage,
        } => dga::generate(b, name, *domains, *bots, *coverage, seeds),
        CampaignSpec::TwoStage {
            name,
            download_servers,
            cnc_servers,
            bots,
            coverage,
        } => bagle::generate(
            b,
            name,
            *download_servers,
            *cnc_servers,
            *bots,
            *coverage,
            seeds,
        ),
        CampaignSpec::Sality {
            name,
            download_servers,
            bots,
            coverage,
        } => sality::generate(b, name, *download_servers, *bots, *coverage, seeds),
        CampaignSpec::Scanning {
            name,
            targets,
            bots,
            coverage,
        } => scanning::generate(b, world, name, *targets, *bots, *coverage, seeds),
        CampaignSpec::Iframe {
            name,
            targets,
            bots,
            coverage,
        } => iframe::generate(b, world, name, *targets, *bots, *coverage, seeds),
        CampaignSpec::Phishing {
            name,
            domains,
            bots,
            coverage,
        } => phishing::generate(b, name, *domains, *bots, *coverage, seeds),
        CampaignSpec::DropZone {
            name,
            domains,
            bots,
            coverage,
        } => dropzone::generate(b, name, *domains, *bots, *coverage, seeds),
    }
}

/// A campaign's synchronized activity windows: bots of one campaign check
/// in during the same few bursts (C&C polling intervals, scan sweeps) —
/// the temporal correlation the paper's proposed time-based dimension
/// (§VI) exploits.
#[derive(Debug, Clone)]
pub struct BurstSchedule {
    windows: Vec<(u64, u64)>,
}

impl BurstSchedule {
    /// Picks `n` non-degenerate windows of 30–90 minutes within the day.
    pub fn pick<R: smash_support::rng::Rng + ?Sized>(
        rng: &mut R,
        day_seconds: u64,
        n: usize,
    ) -> Self {
        let day = day_seconds.max(3600);
        let windows = (0..n.max(1))
            .map(|_| {
                let len = rng.gen_range(1800u64..5400).min(day - 1);
                let start = rng.gen_range(0..day - len);
                (start, start + len)
            })
            .collect();
        Self { windows }
    }

    /// A timestamp inside one of the windows.
    pub fn sample<R: smash_support::rng::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let (lo, hi) = self.windows[rng.gen_range(0..self.windows.len())];
        rng.gen_range(lo..hi)
    }

    /// The windows, for tests.
    pub fn windows(&self) -> &[(u64, u64)] {
        &self.windows
    }
}

/// Picks a campaign's bots, honoring the seeds' bot block when set.
pub(crate) fn pick_campaign_bots<R: smash_support::rng::Rng + ?Sized>(
    b: &ScenarioBuilder,
    rng: &mut R,
    n: usize,
    seeds: CampaignSeeds,
) -> Vec<String> {
    match seeds.bot_range {
        Some((lo, hi)) if hi > lo => {
            let span = (hi.min(b.client_count())).saturating_sub(lo);
            if span == 0 {
                return b.pick_bots(rng, n);
            }
            crate::builder::pick_clients(rng, n.min(span), span)
                .into_iter()
                .map(|name| {
                    // pick_clients sampled 0..span; shift into the block.
                    let idx: usize = name
                        .trim_start_matches("client-")
                        .parse()
                        .expect("pick_clients yields client-<index> names");
                    crate::builder::client_name(lo + idx)
                })
                .collect()
        }
        _ => b.pick_bots(rng, n),
    }
}

/// Draws `n` unique shady domains.
pub(crate) fn unique_shady_domains<R: smash_support::rng::Rng + ?Sized>(
    rng: &mut R,
    n: usize,
) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let d = crate::names::shady_domain(rng);
        if seen.insert(d.clone()) {
            out.push(d);
        }
    }
    out
}

/// Draws `n` unique benign-looking (compromised) domains.
pub(crate) fn unique_benign_domains<R: smash_support::rng::Rng + ?Sized>(
    rng: &mut R,
    n: usize,
) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let d = crate::names::benign_domain(rng);
        if seen.insert(d.clone()) {
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_fixed_derives_distinct_streams() {
        let s = CampaignSeeds::fixed(9);
        assert_ne!(s.identity, s.infra);
        assert_ne!(s.infra, s.traffic);
    }

    #[test]
    fn unique_domain_helpers() {
        let mut rng = DetRng::seed_from_u64(1);
        let ds = unique_shady_domains(&mut rng, 50);
        let set: std::collections::HashSet<&String> = ds.iter().collect();
        assert_eq!(set.len(), 50);
        let bs = unique_benign_domains(&mut rng, 50);
        let set: std::collections::HashSet<&String> = bs.iter().collect();
        assert_eq!(set.len(), 50);
    }
}
