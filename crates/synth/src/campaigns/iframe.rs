//! Wordpress iframe-injection campaigns (paper Table IX): compromised
//! hosts upload/poll a malicious `sm3.php` under varying `wp-content`
//! paths on many benign servers, with the empty user-agent `-`.

use super::CampaignSeeds;
use crate::benign::BenignWorld;
use crate::builder::ScenarioBuilder;
use crate::config::DetectionCoverage;
use smash_groundtruth::ActivityCategory;
use smash_support::rng::Rng;
use smash_trace::HttpRecord;

const INJECT_PATHS: &[&str] = &[
    "/wp-content/uploads/sm3.php",
    "/wp-content/themes/sm3.php",
    "/images/sm3.php",
    "/wp-content/plugins/cache/sm3.php",
];

/// Generates one iframe-injection campaign over tail benign servers.
/// Returns the injected target names.
pub fn generate(
    b: &mut ScenarioBuilder,
    world: &BenignWorld,
    name: &str,
    n_targets: usize,
    n_bots: usize,
    coverage: DetectionCoverage,
    seeds: CampaignSeeds,
) -> Vec<String> {
    let (mut id_rng, mut infra, mut traffic) = seeds.rngs();
    let bots = super::pick_campaign_bots(b, &mut id_rng, n_bots, seeds);
    // Iframe injection hits the odd-parity half of the tail; scanning
    // hits the even half — disjoint victims keep the two attacking herds
    // separate.
    let tail = world.tail_partition((n_targets * 4).max(n_targets), 1);
    let mut idx: Vec<usize> = (0..tail.len()).collect();
    for i in (1..idx.len()).rev() {
        idx.swap(i, infra.gen_range(0..=i));
    }
    let targets: Vec<&crate::benign::BenignServer> =
        idx.into_iter().take(n_targets).map(|i| tail[i]).collect();
    let target_names: Vec<String> = targets.iter().map(|t| t.domain.clone()).collect();

    // Only a sliver of the 600-server herd is IDS/blacklist-known (the
    // paper's IDS caught 4 of 600).
    let defunct = b.apply_coverage(&mut infra, &target_names, coverage, name);
    let bursts = super::BurstSchedule::pick(&mut infra, b.day_seconds, 1);

    for bot in &bots {
        for t in &targets {
            let ts = bursts.sample(&mut traffic);
            let path = INJECT_PATHS[traffic.gen_range(0..INJECT_PATHS.len())];
            let ip = &t.ips[traffic.gen_range(0..t.ips.len())];
            let status = if defunct.contains(&t.domain) {
                404
            } else {
                200
            };
            b.push(
                HttpRecord::new(ts, bot, &t.domain, ip, path)
                    .with_user_agent("-")
                    .with_method("POST")
                    .with_status(status),
            );
        }
    }

    let cid = b.begin_campaign(name, ActivityCategory::IframeInjection);
    for t in &target_names {
        b.label_server(t, cid, ActivityCategory::IframeInjection);
    }
    b.mark_defunct(&defunct);
    target_names
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_support::rng::DetRng;
    use smash_support::rng::SeedableRng;
    use smash_trace::TraceDataset;

    fn run(n: usize) -> (ScenarioBuilder, Vec<String>) {
        let mut b = ScenarioBuilder::new(50, 86_400);
        let mut wrng = DetRng::seed_from_u64(2);
        let world = BenignWorld::build(&mut b, &mut wrng, 150, 2, 1.0);
        let cov = DetectionCoverage {
            ids2012: 0.01,
            ids2013: 0.02,
            blacklist: 0.02,
            defunct: 0.0,
        };
        let targets = generate(&mut b, &world, "iframe", n, 2, cov, CampaignSeeds::fixed(4));
        (b, targets)
    }

    #[test]
    fn sm3_php_shared_under_varying_paths() {
        let (b, targets) = run(30);
        let ds = TraceDataset::from_records(b.finish().records);
        let mut paths = std::collections::HashSet::new();
        for t in &targets {
            let sid = ds.server_id(t).unwrap();
            let files: Vec<&str> = ds.files_of(sid).iter().map(|&f| ds.file_name(f)).collect();
            assert_eq!(files, vec!["sm3.php"]);
            for r in ds.records_of(sid) {
                paths.insert(ds.path_name(r.path).to_string());
            }
        }
        assert!(paths.len() > 1, "paths should vary: {paths:?}");
    }

    #[test]
    fn dash_user_agent() {
        let (b, targets) = run(10);
        let ds = TraceDataset::from_records(b.finish().records);
        let sid = ds.server_id(&targets[0]).unwrap();
        for r in ds.records_of(sid) {
            assert_eq!(ds.user_agent_name(r.user_agent), "-");
        }
    }

    #[test]
    fn ids_coverage_is_sparse() {
        let (b, _) = run(100);
        let parts = b.finish();
        assert!(parts.sigs2013.len() < 10, "{} sigs", parts.sigs2013.len());
    }

    #[test]
    fn truth_is_attacking_category() {
        let (b, targets) = run(10);
        let truth = b.finish().truth;
        assert_eq!(
            truth.server(&targets[0]).unwrap().category,
            ActivityCategory::IframeInjection
        );
    }
}
