//! Drop-zone herds: a few upload endpoints sharing hosting and the
//! exfiltration script.

use super::{unique_shady_domains, CampaignSeeds};
use crate::builder::ScenarioBuilder;
use crate::config::DetectionCoverage;
use smash_groundtruth::ActivityCategory;
use smash_support::rng::Rng;
use smash_trace::HttpRecord;

/// Generates one drop-zone campaign. Returns the domain list.
pub fn generate(
    b: &mut ScenarioBuilder,
    name: &str,
    n_domains: usize,
    n_bots: usize,
    coverage: DetectionCoverage,
    seeds: CampaignSeeds,
) -> Vec<String> {
    let (mut id_rng, mut infra, mut traffic) = seeds.rngs();
    let bots = super::pick_campaign_bots(b, &mut id_rng, n_bots, seeds);
    let domains = unique_shady_domains(&mut infra, n_domains);
    let pool = b.campaign_ip_pool(1);
    b.register_whois_correlated(&mut infra, &domains);
    let defunct = b.apply_coverage(&mut infra, &domains, coverage, name);
    let ua = "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.0)";
    let bursts = super::BurstSchedule::pick(&mut infra, b.day_seconds, 1);

    for bot in &bots {
        for d in &domains {
            for _ in 0..traffic.gen_range(1..=4) {
                let ts = bursts.sample(&mut traffic);
                let uri = format!(
                    "/panel/up.php?bot={}&chunk={}",
                    traffic.gen_range(100..999),
                    traffic.gen_range(0..64)
                );
                let status = if defunct.contains(d) { 404 } else { 200 };
                b.push(
                    HttpRecord::new(ts, bot, d, &pool[0], &uri)
                        .with_user_agent(ua)
                        .with_method("POST")
                        .with_status(status),
                );
            }
        }
    }

    let cid = b.begin_campaign(name, ActivityCategory::DropZone);
    for d in &domains {
        b.label_server(d, cid, ActivityCategory::DropZone);
    }
    b.mark_defunct(&defunct);
    domains
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_trace::TraceDataset;

    fn run() -> (ScenarioBuilder, Vec<String>) {
        let mut b = ScenarioBuilder::new(40, 86_400);
        let domains = generate(
            &mut b,
            "drop",
            3,
            1,
            DetectionCoverage::typical(),
            CampaignSeeds::fixed(8),
        );
        (b, domains)
    }

    #[test]
    fn single_shared_ip() {
        let (b, domains) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let mut ips = std::collections::HashSet::new();
        for d in &domains {
            for &ip in ds.ips_of(ds.server_id(d).unwrap()) {
                ips.insert(ip);
            }
        }
        assert_eq!(ips.len(), 1);
    }

    #[test]
    fn upload_script_shared() {
        let (b, domains) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        for d in &domains {
            let sid = ds.server_id(d).unwrap();
            let files: Vec<&str> = ds.files_of(sid).iter().map(|&f| ds.file_name(f)).collect();
            assert_eq!(files, vec!["up.php"]);
        }
    }

    #[test]
    fn single_client_campaign() {
        let (b, domains) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let sid = ds.server_id(&domains[0]).unwrap();
        assert_eq!(ds.clients_of(sid).len(), 1);
    }

    #[test]
    fn param_pattern_is_stable() {
        let (b, domains) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let sid = ds.server_id(&domains[0]).unwrap();
        for r in ds.records_of(sid) {
            assert_eq!(ds.param_pattern_name(r.param_pattern), "bot=[]&chunk=[]");
        }
    }
}
