//! Small phishing herds: a few short-lived domains with correlated Whois
//! serving the same credential-harvesting script.

use super::{unique_shady_domains, CampaignSeeds};
use crate::builder::ScenarioBuilder;
use crate::config::DetectionCoverage;
use smash_groundtruth::ActivityCategory;
use smash_support::rng::Rng;
use smash_trace::HttpRecord;

const LURES: &[&str] = &["signin.php", "verify.php", "secure-login.php"];

/// Generates one phishing campaign. Returns the domain list.
pub fn generate(
    b: &mut ScenarioBuilder,
    name: &str,
    n_domains: usize,
    n_victims: usize,
    coverage: DetectionCoverage,
    seeds: CampaignSeeds,
) -> Vec<String> {
    let (mut id_rng, mut infra, mut traffic) = seeds.rngs();
    let victims = super::pick_campaign_bots(b, &mut id_rng, n_victims, seeds);
    let domains = unique_shady_domains(&mut infra, n_domains);
    // Phishing kits sit on cheap disjoint hosting; Whois is the tell.
    let ips: Vec<String> = (0..n_domains).map(|_| b.campaign_ip()).collect();
    b.register_whois_correlated(&mut infra, &domains);
    let defunct = b.apply_coverage(&mut infra, &domains, coverage, name);
    let lure = LURES[infra.gen_range(0..LURES.len())];
    let bursts = super::BurstSchedule::pick(&mut infra, b.day_seconds, 1);

    for v in &victims {
        for (i, d) in domains.iter().enumerate() {
            let ts = bursts.sample(&mut traffic);
            let uri = format!(
                "/{}/{lure}?acc={}",
                "account",
                traffic.gen_range(1000..9999)
            );
            let status = if defunct.contains(d) { 0 } else { 200 };
            b.push(
                HttpRecord::new(ts, v, d, &ips[i], &uri)
                    .with_user_agent("Mozilla/5.0 (Windows NT 6.1) Firefox/15.0")
                    .with_status(status),
            );
        }
    }

    let cid = b.begin_campaign(name, ActivityCategory::Phishing);
    for d in &domains {
        b.label_server(d, cid, ActivityCategory::Phishing);
    }
    b.mark_defunct(&defunct);
    domains
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_trace::TraceDataset;

    fn run() -> (ScenarioBuilder, Vec<String>) {
        let mut b = ScenarioBuilder::new(40, 86_400);
        let domains = generate(
            &mut b,
            "phish",
            5,
            2,
            DetectionCoverage::invisible(),
            CampaignSeeds::fixed(6),
        );
        (b, domains)
    }

    #[test]
    fn lure_file_shared() {
        let (b, domains) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let f0: Vec<u32> = ds.files_of(ds.server_id(&domains[0]).unwrap()).to_vec();
        for d in &domains[1..] {
            assert_eq!(ds.files_of(ds.server_id(d).unwrap()), f0.as_slice());
        }
    }

    #[test]
    fn ips_not_shared() {
        let (b, domains) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let a = ds.ips_of(ds.server_id(&domains[0]).unwrap());
        let c = ds.ips_of(ds.server_id(&domains[1]).unwrap());
        assert_ne!(a, c);
    }

    #[test]
    fn invisible_coverage_marks_many_defunct() {
        let (b, domains) = run();
        let truth = b.finish().truth;
        let defunct = domains
            .iter()
            .filter(|d| truth.server(d).unwrap().defunct)
            .count();
        assert!(defunct >= 1, "expected some defunct phishing domains");
    }

    #[test]
    fn category_is_phishing() {
        let (b, domains) = run();
        let truth = b.finish().truth;
        assert_eq!(
            truth.server(&domains[0]).unwrap().category,
            ActivityCategory::Phishing
        );
    }
}
