//! Zeus-style DGA herds (paper Table X): sibling domain names on a free
//! zone, one shared IP, all serving `/login.php`.

use super::CampaignSeeds;
use crate::builder::ScenarioBuilder;
use crate::config::DetectionCoverage;
use crate::names;
use smash_groundtruth::{ActivityCategory, Signature};
use smash_support::rng::Rng;
use smash_trace::HttpRecord;

/// Generates one DGA C&C campaign. Returns the domain list.
pub fn generate(
    b: &mut ScenarioBuilder,
    name: &str,
    n_domains: usize,
    n_bots: usize,
    coverage: DetectionCoverage,
    seeds: CampaignSeeds,
) -> Vec<String> {
    let (mut id_rng, mut infra, mut traffic) = seeds.rngs();
    let bots = super::pick_campaign_bots(b, &mut id_rng, n_bots, seeds);
    let domains = names::dga_family(&mut infra, n_domains);
    // The whole family resolves to one (occasionally two) IPs.
    let pool = b.campaign_ip_pool(if n_domains > 5 { 2 } else { 1 });
    b.register_whois_correlated(&mut infra, &domains);
    let defunct = b.apply_coverage(&mut infra, &domains, coverage, name);
    let ua = format!("ZBot/{}.{}", infra.gen_range(1..4), infra.gen_range(0..10));
    let bursts = super::BurstSchedule::pick(&mut infra, b.day_seconds, 2);

    for bot in &bots {
        for domain in &domains {
            for _ in 0..traffic.gen_range(1..=2) {
                let ts = bursts.sample(&mut traffic);
                let ip = &pool[traffic.gen_range(0..pool.len())];
                let status = if defunct.contains(domain) { 404 } else { 200 };
                b.push(
                    HttpRecord::new(ts, bot, domain, ip, "/login.php")
                        .with_user_agent(&ua)
                        .with_status(status),
                );
            }
        }
    }

    let c = b.begin_campaign(name, ActivityCategory::CommandAndControl);
    for d in &domains {
        b.label_server(d, c, ActivityCategory::CommandAndControl);
    }
    b.mark_defunct(&defunct);

    if coverage.ids2013 >= 1.0 {
        // The 2013 signatures learned the whole family (paper: "2013 IDS
        // signatures detect all of these domains").
        let sig = Signature::new(name)
            .with_uri_file("login.php")
            .with_user_agent(&ua);
        b.add_pattern_signature(sig, coverage.ids2012 >= 1.0);
    }
    domains
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_trace::TraceDataset;

    fn run() -> (ScenarioBuilder, Vec<String>) {
        let mut b = ScenarioBuilder::new(60, 86_400);
        let domains = generate(
            &mut b,
            "zeus-dga",
            8,
            2,
            DetectionCoverage::zero_day(),
            CampaignSeeds::fixed(5),
        );
        (b, domains)
    }

    #[test]
    fn family_shares_one_ip_set() {
        let (b, domains) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let ips: std::collections::HashSet<u32> = domains
            .iter()
            .filter_map(|d| ds.server_id(d))
            .flat_map(|s| ds.ips_of(s).to_vec())
            .collect();
        assert!(ips.len() <= 2);
    }

    #[test]
    fn all_domains_serve_login_php() {
        let (b, domains) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        for d in &domains {
            let sid = ds.server_id(d).unwrap();
            let files: Vec<&str> = ds.files_of(sid).iter().map(|&f| ds.file_name(f)).collect();
            assert_eq!(files, vec!["login.php"]);
        }
    }

    #[test]
    fn zero_day_signatures_only_2013() {
        let (b, _) = run();
        let parts = b.finish();
        assert!(parts.sigs2012.is_empty());
        assert!(!parts.sigs2013.is_empty());
    }

    #[test]
    fn names_look_like_a_dga_family() {
        let (_, domains) = run();
        assert!(domains.iter().all(|d| d.ends_with(".cz.cc")));
        let stems: std::collections::HashSet<&str> = domains.iter().map(|d| &d[..4]).collect();
        assert_eq!(stems.len(), 1);
    }
}
