//! Sality-style campaigns (paper Table VIII): two C&C domains sharing IPs
//! and Whois (requesting `/`), plus compromised download servers serving
//! `.gif` payloads — every request stamped with the `KUKU v5.05exp`
//! user-agent that makes the threat fully IDS-visible.

use super::{unique_benign_domains, CampaignSeeds};
use crate::builder::ScenarioBuilder;
use crate::config::DetectionCoverage;
use crate::names;
use smash_groundtruth::{ActivityCategory, Signature};
use smash_support::rng::Rng;
use smash_trace::HttpRecord;

const GIFS: &[&str] = &["mainf.gif", "logos.gif", "winlogo.gif"];

/// Generates one Sality campaign. Returns server names (two C&C first).
pub fn generate(
    b: &mut ScenarioBuilder,
    name: &str,
    n_download: usize,
    n_bots: usize,
    coverage: DetectionCoverage,
    seeds: CampaignSeeds,
) -> Vec<String> {
    let (mut id_rng, mut infra, mut traffic) = seeds.rngs();
    let bots = super::pick_campaign_bots(b, &mut id_rng, n_bots, seeds);
    let ua = "KUKU v5.05exp";

    // Two C&C domains: shared IPs + registration info, handler is `/`.
    let cncs = vec![
        format!("kukutrust{}.info", names::rand_token(&mut infra, 6)),
        format!("kjwre{}.info", names::rand_token(&mut infra, 6)),
    ];
    let pool = b.campaign_ip_pool(2);
    b.register_whois_correlated(&mut infra, &cncs);
    let cnc_defunct = b.apply_coverage(&mut infra, &cncs, coverage, name);

    // Compromised download servers: diverse infrastructure, shared gifs.
    let downloads = unique_benign_domains(&mut infra, n_download);
    let dl_ips: Vec<String> = (0..n_download).map(|_| b.benign_ip()).collect();
    // Each compromised host serves two of the three payload names, so the
    // shared-filename overlap chains all download servers into one herd.
    let dl_gif: Vec<[&str; 2]> = (0..n_download)
        .map(|_| {
            let first = infra.gen_range(0..GIFS.len());
            let second = (first + 1 + infra.gen_range(0..GIFS.len() - 1)) % GIFS.len();
            [GIFS[first], GIFS[second]]
        })
        .collect();
    for d in &downloads {
        let provider = b.next_provider();
        b.register_whois_random(&mut infra, d, provider);
    }
    let dl_defunct = b.apply_coverage(&mut infra, &downloads, coverage, name);
    let bursts = super::BurstSchedule::pick(&mut infra, b.day_seconds, 2);
    // Each payload name is one binary with one size, identical across the
    // compromised hosts serving it.
    let gif_bytes: Vec<u32> = GIFS
        .iter()
        .map(|_| infra.gen_range(20_000u32..80_000) & !63)
        .collect();

    for bot in &bots {
        for (i, d) in downloads.iter().enumerate() {
            for gif in dl_gif[i] {
                let ts = bursts.sample(&mut traffic);
                let key = format!("{:06x}", traffic.gen_range(0..0xFFFFFFu32));
                let uri = format!(
                    "/images/{gif}?{key}={}",
                    traffic.gen_range(1_000_000..99_999_999)
                );
                let status = if dl_defunct.contains(d) { 404 } else { 200 };
                let gi = GIFS.iter().position(|g| *g == gif).unwrap_or(0);
                b.push(
                    HttpRecord::new(ts, bot, d, &dl_ips[i], &uri)
                        .with_user_agent(ua)
                        .with_status(status)
                        .with_resp_bytes(gif_bytes[gi] + traffic.gen_range(0u32..64)),
                );
            }
        }
        for c in &cncs {
            for _ in 0..traffic.gen_range(1..=3) {
                let ts = bursts.sample(&mut traffic);
                let ip = &pool[traffic.gen_range(0..pool.len())];
                let key = format!("{:06x}", traffic.gen_range(0..0xFFFFFFu32));
                let uri = format!("/?{key}={}", traffic.gen_range(1_000_000..99_999_999));
                let status = if cnc_defunct.contains(c) { 0 } else { 200 };
                b.push(
                    HttpRecord::new(ts, bot, c, ip, &uri)
                        .with_user_agent(ua)
                        .with_status(status),
                );
            }
        }
    }

    let cid = b.begin_campaign(name, ActivityCategory::CommandAndControl);
    for c in &cncs {
        b.label_server(c, cid, ActivityCategory::CommandAndControl);
    }
    for d in &downloads {
        b.label_server(d, cid, ActivityCategory::Downloading);
    }
    b.mark_defunct(&cnc_defunct);
    b.mark_defunct(&dl_defunct);

    // The KUKU user-agent is a classic content signature.
    if coverage.ids2013 >= 1.0 {
        b.add_pattern_signature(
            Signature::new(name).with_user_agent(ua),
            coverage.ids2012 >= 1.0,
        );
    }

    let mut all = cncs;
    all.extend(downloads);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_trace::TraceDataset;

    fn run() -> (ScenarioBuilder, Vec<String>) {
        let mut b = ScenarioBuilder::new(60, 86_400);
        let servers = generate(
            &mut b,
            "sality",
            10,
            3,
            DetectionCoverage::well_known(),
            CampaignSeeds::fixed(33),
        );
        (b, servers)
    }

    #[test]
    fn two_cnc_plus_downloads() {
        let (_, servers) = run();
        assert_eq!(servers.len(), 12);
        assert!(servers[0].contains("kukutrust"));
    }

    #[test]
    fn cnc_pair_shares_ips_and_whois() {
        let (b, servers) = run();
        let parts = b.finish();
        let ds = TraceDataset::from_records(parts.records);
        let a = ds.server_id(&servers[0]).unwrap();
        let c = ds.server_id(&servers[1]).unwrap();
        assert_eq!(ds.ips_of(a), ds.ips_of(c));
        assert!(parts.whois.associated(&servers[0], &servers[1]));
    }

    #[test]
    fn kuku_ua_everywhere() {
        let (b, servers) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        for s in &servers {
            let sid = ds.server_id(s).unwrap();
            for r in ds.records_of(sid) {
                assert_eq!(ds.user_agent_name(r.user_agent), "KUKU v5.05exp");
            }
        }
    }

    #[test]
    fn downloads_serve_shared_gif_names() {
        let (b, servers) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let mut gif_names = std::collections::HashSet::new();
        for d in &servers[2..] {
            let sid = ds.server_id(d).unwrap();
            for &f in ds.files_of(sid) {
                gif_names.insert(ds.file_name(f).to_string());
            }
        }
        assert!(gif_names.len() <= GIFS.len());
        assert!(gif_names.iter().all(|g| g.ends_with(".gif")));
    }

    #[test]
    fn well_known_coverage_has_pattern_sig_in_2012() {
        let (b, _) = run();
        let parts = b.finish();
        assert!(parts
            .sigs2012
            .iter()
            .any(|s| s.user_agent.as_deref() == Some("KUKU v5.05exp")));
    }

    #[test]
    fn cnc_requests_share_the_root_filename() {
        // The paper's Sality C&C pair is correlated via the filename "/".
        let (b, servers) = run();
        let ds = TraceDataset::from_records(b.finish().records);
        let sid = ds.server_id(&servers[0]).unwrap();
        let files: Vec<&str> = ds.files_of(sid).iter().map(|&f| ds.file_name(f)).collect();
        assert_eq!(files, vec!["/"]);
    }
}
