//! Domain-flux C&C campaigns (paper Fig. 1(a)), optionally with
//! obfuscated long handler filenames (paper Fig. 4).

use super::{unique_shady_domains, CampaignSeeds};
use crate::builder::ScenarioBuilder;
use crate::config::DetectionCoverage;
use crate::names;
use smash_groundtruth::{ActivityCategory, Signature};
use smash_support::rng::Rng;
use smash_trace::HttpRecord;

const SCRIPTS: &[&str] = &["login.php", "gate.php", "panel.php", "new.php"];
const DIRS: &[&str] = &["images", "admin", "inc", "data"];

/// Generates one domain-flux C&C campaign. Returns the domain list.
pub fn generate(
    b: &mut ScenarioBuilder,
    name: &str,
    n_domains: usize,
    n_bots: usize,
    obfuscated: bool,
    coverage: DetectionCoverage,
    seeds: CampaignSeeds,
) -> Vec<String> {
    let (mut id_rng, mut infra, mut traffic) = seeds.rngs();
    let bots = super::pick_campaign_bots(b, &mut id_rng, n_bots, seeds);
    let domains = unique_shady_domains(&mut infra, n_domains);

    // Small shared IP pool: domain fluxing on few hosts.
    let pool = b.campaign_ip_pool((n_domains / 3).max(1));
    let domain_ips: Vec<Vec<String>> = domains
        .iter()
        .map(|_| {
            let k = infra.gen_range(1..=2.min(pool.len()));
            let mut v: Vec<String> = (0..k)
                .map(|_| pool[infra.gen_range(0..pool.len())].clone())
                .collect();
            v.dedup();
            v
        })
        .collect();

    b.register_whois_correlated(&mut infra, &domains);
    let defunct = b.apply_coverage(&mut infra, &domains, coverage, name);

    // Handler script(s): one shared script, or per-domain obfuscated long
    // names drawn from a shared alphabet.
    let dir = DIRS[infra.gen_range(0..DIRS.len())];
    let shared_script = SCRIPTS[infra.gen_range(0..SCRIPTS.len())].to_string();
    let scripts: Vec<String> = if obfuscated {
        let alpha = names::obfuscation_alphabet(&mut infra, 8);
        domains
            .iter()
            .map(|_| {
                // The paper's obfuscated names run up to 211 chars; long
                // names keep the per-name character distributions close.
                let len = infra.gen_range(80..150);
                names::obfuscated_filename(&mut infra, &alpha, len)
            })
            .collect()
    } else {
        vec![shared_script.clone(); n_domains]
    };
    let ua = format!(
        "Mozilla/4.0 (compatible; MSIE 6.0; bot-{})",
        names::rand_token(&mut infra, 5)
    );
    let bursts = super::BurstSchedule::pick(&mut infra, b.day_seconds, 2);

    for (bi, bot) in bots.iter().enumerate() {
        for (di, domain) in domains.iter().enumerate() {
            // Each bot polls (almost) every domain of the flux set; the
            // first bot skips nothing so every domain appears in the
            // trace.
            if bi > 0 && n_domains > 8 && traffic.gen::<f64>() < 0.05 {
                continue;
            }
            let reps = traffic.gen_range(1..=3);
            for _ in 0..reps {
                let ts = bursts.sample(&mut traffic);
                let ip = &domain_ips[di][traffic.gen_range(0..domain_ips[di].len())];
                let uri = format!(
                    "/{dir}/{}?p={}&id={}&e=0",
                    scripts[di],
                    traffic.gen_range(1000..99999),
                    traffic.gen_range(1_000_000..99_999_999)
                );
                let status = if defunct.contains(domain) {
                    if traffic.gen::<bool>() {
                        404
                    } else {
                        0
                    }
                } else {
                    200
                };
                b.push(
                    HttpRecord::new(ts, bot, domain, ip, &uri)
                        .with_user_agent(&ua)
                        .with_status(status),
                );
            }
        }
    }

    let c = b.begin_campaign(name, ActivityCategory::CommandAndControl);
    for d in &domains {
        b.label_server(d, c, ActivityCategory::CommandAndControl);
    }
    b.mark_defunct(&defunct);

    // Well-known protocols also get a content signature.
    if !obfuscated && coverage.ids2013 >= 1.0 {
        let sig = Signature::new(name)
            .with_uri_file(&shared_script)
            .with_param_pattern("p=[]&id=[]&e=[]")
            .with_user_agent(&ua);
        b.add_pattern_signature(sig, coverage.ids2012 >= 1.0);
    }
    domains
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_trace::TraceDataset;

    fn run(obfuscated: bool) -> (ScenarioBuilder, Vec<String>) {
        let mut b = ScenarioBuilder::new(100, 86_400);
        let domains = generate(
            &mut b,
            "flux-test",
            8,
            3,
            obfuscated,
            DetectionCoverage::typical(),
            CampaignSeeds::fixed(77),
        );
        (b, domains)
    }

    #[test]
    fn bots_share_the_domain_set() {
        let (b, domains) = run(false);
        let ds = TraceDataset::from_records(b.finish().records);
        // Every domain contacted by a common set of bots.
        let first = ds.server_id(&domains[0]).unwrap();
        let clients = ds.clients_of(first);
        assert!(!clients.is_empty() && clients.len() <= 3);
    }

    #[test]
    fn shared_script_across_domains() {
        let (b, domains) = run(false);
        let ds = TraceDataset::from_records(b.finish().records);
        let f0: Vec<u32> = ds.files_of(ds.server_id(&domains[0]).unwrap()).to_vec();
        let f1: Vec<u32> = ds.files_of(ds.server_id(&domains[1]).unwrap()).to_vec();
        assert_eq!(f0, f1);
        assert_eq!(f0.len(), 1);
    }

    #[test]
    fn obfuscated_scripts_differ_but_share_charset() {
        let (b, domains) = run(true);
        let ds = TraceDataset::from_records(b.finish().records);
        let name0 = ds
            .file_name(ds.files_of(ds.server_id(&domains[0]).unwrap())[0])
            .to_string();
        let name1 = ds
            .file_name(ds.files_of(ds.server_id(&domains[1]).unwrap())[0])
            .to_string();
        assert_ne!(name0, name1);
        assert!(name0.len() > 25);
        assert!(smash_trace::uri::charset_cosine(&name0, &name1) > 0.8);
    }

    #[test]
    fn ips_are_shared_within_campaign() {
        let (b, domains) = run(false);
        let ds = TraceDataset::from_records(b.finish().records);
        let all_ips: std::collections::HashSet<u32> = domains
            .iter()
            .filter_map(|d| ds.server_id(d))
            .flat_map(|s| ds.ips_of(s).to_vec())
            .collect();
        // 8 domains but a pool of at most ~3 IPs (plus dedup noise).
        assert!(all_ips.len() <= 4, "{} ips", all_ips.len());
    }

    #[test]
    fn truth_labels_all_domains() {
        let (b, domains) = run(false);
        let truth = b.finish().truth;
        for d in &domains {
            assert!(truth.involved_in_malicious_activity(d));
        }
    }

    #[test]
    fn whois_correlated() {
        let (b, domains) = run(false);
        let whois = b.finish().whois;
        assert!(whois.associated(&domains[0], &domains[1]));
    }

    #[test]
    fn deterministic() {
        let (b1, d1) = run(false);
        let (b2, d2) = run(false);
        assert_eq!(d1, d2);
        assert_eq!(b1.finish().records, b2.finish().records);
    }
}
