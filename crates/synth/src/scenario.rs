//! Scenario presets mirroring the paper's datasets, and week-level
//! campaign evolution (persistent vs agile, Fig. 7).

use crate::benign::BenignWorld;
use crate::builder::ScenarioBuilder;
use crate::campaigns::{self, CampaignSeeds};
use crate::config::{CampaignSpec, DetectionCoverage, NoiseSpec, SynthConfig};
use crate::noise;
use smash_groundtruth::{BlacklistSet, GroundTruth, Ids};
use smash_support::json::{self, FromJson};
use smash_support::rng::{DetRng, SeedableRng};
use smash_trace::TraceDataset;
use smash_whois::WhoisRegistry;

/// One generated day: the trace plus every label source the evaluation
/// needs.
#[derive(Debug)]
pub struct ScenarioData {
    /// The interned trace.
    pub dataset: TraceDataset,
    /// Planted ground truth.
    pub truth: GroundTruth,
    /// Whois registry for the Whois dimension.
    pub whois: WhoisRegistry,
    /// 2012-vintage IDS labels over this trace.
    pub ids2012: Ids,
    /// 2013-vintage IDS labels over this trace.
    pub ids2013: Ids,
    /// Blacklists.
    pub blacklists: BlacklistSet,
}

impl ScenarioData {
    /// Persists the whole day — dataset, truth, Whois, IDS vintages,
    /// blacklists — as JSON files in `dir` (created if missing), so a
    /// generated scenario can be archived and evaluated elsewhere.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save<P: AsRef<std::path::Path>>(&self, dir: P) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let write = |name: &str, json: String| -> std::io::Result<()> {
            std::fs::write(dir.join(name), json)
        };
        write("dataset.json", json::to_string(&self.dataset))?;
        write("truth.json", json::to_string_pretty(&self.truth))?;
        write("whois.json", json::to_string_pretty(&self.whois))?;
        write("ids2012.json", json::to_string_pretty(&self.ids2012))?;
        write("ids2013.json", json::to_string_pretty(&self.ids2013))?;
        write("blacklists.json", json::to_string_pretty(&self.blacklists))?;
        Ok(())
    }

    /// Loads a day previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns any I/O error or malformed JSON.
    pub fn load<P: AsRef<std::path::Path>>(dir: P) -> std::io::Result<Self> {
        let dir = dir.as_ref();
        fn read<T: FromJson>(path: std::path::PathBuf) -> std::io::Result<T> {
            json::from_str(&std::fs::read_to_string(path)?).map_err(std::io::Error::other)
        }
        Ok(Self {
            dataset: read(dir.join("dataset.json"))?,
            truth: read(dir.join("truth.json"))?,
            whois: read(dir.join("whois.json"))?,
            ids2012: read(dir.join("ids2012.json"))?,
            ids2013: read(dir.join("ids2013.json"))?,
            blacklists: read(dir.join("blacklists.json"))?,
        })
    }
}

/// How a campaign evolves across a week.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persistence {
    /// Same servers every day.
    Persistent,
    /// Same bots, fresh servers every day (the dominant mode the paper
    /// observes).
    Agile,
}

/// One campaign's week-level plan.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// The campaign spec.
    pub spec: CampaignSpec,
    /// Persistence across days.
    pub persistence: Persistence,
    /// First day (0-based) the campaign is active.
    pub start_day: usize,
}

/// A single-day scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generator configuration.
    pub config: SynthConfig,
}

/// A generated week.
#[derive(Debug)]
pub struct WeekData {
    /// One [`ScenarioData`] per day.
    pub days: Vec<ScenarioData>,
}

/// A week-long scenario with campaign evolution plans.
#[derive(Debug, Clone)]
pub struct WeekScenario {
    /// Base world configuration (clients, benign universe, noise).
    pub base: SynthConfig,
    /// Per-campaign evolution plans.
    pub plans: Vec<CampaignPlan>,
    /// Number of days.
    pub days: usize,
}

/// SplitMix64 — derives independent sub-seeds from (seed, tags).
pub(crate) fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.rotate_left(17) ^ b.rotate_left(41);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn generate_day(config: &SynthConfig, day: usize, plans: &[CampaignPlan]) -> ScenarioData {
    let mut b = ScenarioBuilder::new(config.n_clients, config.day_seconds);
    // The benign universe is a function of the base seed only, so a week's
    // days share servers, Whois, and IPs.
    let mut world_rng = DetRng::seed_from_u64(mix(config.seed, 0x0B1E_55ED, 0));
    let world = BenignWorld::build(
        &mut b,
        &mut world_rng,
        config.n_benign_servers,
        config.n_cdn,
        config.zipf_exponent,
    );
    let mut traffic_rng = DetRng::seed_from_u64(mix(config.seed, 0x007A_FF1C, day as u64));
    world.emit_traffic(&mut b, &mut traffic_rng, config.mean_client_requests);

    // Disjoint bot blocks: infected machines never straddle campaigns
    // (a chance-shared bot fuses two campaigns' client sets).
    let block = (config.n_clients / plans.len().max(1)).max(1);
    for (i, plan) in plans.iter().enumerate() {
        if day < plan.start_day {
            continue;
        }
        let infra_tag = match plan.persistence {
            Persistence::Persistent => 0,
            Persistence::Agile => day as u64 + 1,
        };
        let lo = (i * block) % config.n_clients.max(1);
        let seeds = CampaignSeeds {
            identity: mix(config.seed, 0x1D_0000 + i as u64, plan.start_day as u64),
            infra: mix(config.seed, 0x2F_0000 + i as u64, infra_tag),
            traffic: mix(config.seed, 0x3A_0000 + i as u64, 100 + day as u64),
            bot_range: Some((lo, lo + block)),
        };
        campaigns::generate(&mut b, &world, &plan.spec, seeds);
    }

    let mut noise_rng = DetRng::seed_from_u64(mix(config.seed, 0x0002_015E, day as u64));
    noise::generate(&mut b, &mut noise_rng, config.noise);

    let parts = b.finish();
    let dataset = TraceDataset::from_records(parts.records);
    let ids2012 = Ids::from_signatures(&parts.sigs2012, &dataset);
    let ids2013 = Ids::from_signatures(&parts.sigs2013, &dataset);
    ScenarioData {
        dataset,
        truth: parts.truth,
        whois: parts.whois,
        ids2012,
        ids2013,
        blacklists: parts.blacklists,
    }
}

impl Scenario {
    /// Wraps an explicit configuration.
    pub fn from_config(config: SynthConfig) -> Self {
        Self { config }
    }

    /// A tiny scenario for tests and doc examples (~2k requests).
    pub fn small_day(seed: u64) -> Self {
        Self::from_config(SynthConfig {
            seed,
            n_clients: 60,
            n_benign_servers: 150,
            n_cdn: 2,
            zipf_exponent: 1.0,
            mean_client_requests: 15,
            day_seconds: 86_400,
            campaigns: vec![
                CampaignSpec::CncFlux {
                    name: "flux-small".into(),
                    domains: 6,
                    bots: 2,
                    obfuscated: false,
                    coverage: DetectionCoverage::typical(),
                },
                CampaignSpec::Dga {
                    name: "dga-small".into(),
                    domains: 6,
                    bots: 2,
                    coverage: DetectionCoverage::zero_day(),
                },
                CampaignSpec::Scanning {
                    name: "scan-small".into(),
                    targets: 8,
                    bots: 2,
                    coverage: DetectionCoverage::well_known(),
                },
            ],
            noise: NoiseSpec::none(),
        })
    }

    /// The `Data2011day`-like preset: a medium ISP day with the paper's
    /// case-study campaigns planted (Bagle, Sality, Zeus, TDSS-style
    /// obfuscation, iframe injection, ZmEu) plus single-client campaigns
    /// and both noise herds.
    pub fn data2011_day(seed: u64) -> Self {
        Self::from_config(SynthConfig {
            seed,
            n_clients: 800,
            n_benign_servers: 2000,
            n_cdn: 6,
            zipf_exponent: 1.0,
            mean_client_requests: 35,
            day_seconds: 86_400,
            campaigns: vec![
                CampaignSpec::TwoStage {
                    name: "bagle".into(),
                    download_servers: 10,
                    cnc_servers: 14,
                    bots: 4,
                    coverage: DetectionCoverage::typical(),
                },
                CampaignSpec::Sality {
                    name: "sality".into(),
                    download_servers: 12,
                    bots: 3,
                    coverage: DetectionCoverage::well_known(),
                },
                CampaignSpec::Dga {
                    name: "zeus".into(),
                    domains: 8,
                    bots: 3,
                    coverage: DetectionCoverage::zero_day(),
                },
                CampaignSpec::CncFlux {
                    name: "conficker".into(),
                    domains: 12,
                    bots: 4,
                    obfuscated: false,
                    coverage: DetectionCoverage::typical(),
                },
                CampaignSpec::CncFlux {
                    name: "tdss".into(),
                    domains: 10,
                    bots: 3,
                    obfuscated: true,
                    coverage: DetectionCoverage::typical(),
                },
                CampaignSpec::Iframe {
                    name: "iframe-inject".into(),
                    targets: 100,
                    bots: 3,
                    coverage: DetectionCoverage {
                        ids2012: 0.01,
                        ids2013: 0.03,
                        blacklist: 0.02,
                        defunct: 0.0,
                    },
                },
                CampaignSpec::Scanning {
                    name: "zmeu".into(),
                    targets: 15,
                    bots: 3,
                    coverage: DetectionCoverage {
                        ids2012: 0.05,
                        ids2013: 0.25,
                        blacklist: 0.0,
                        defunct: 0.0,
                    },
                },
                CampaignSpec::Phishing {
                    name: "phish-a".into(),
                    domains: 5,
                    bots: 2,
                    coverage: DetectionCoverage::invisible(),
                },
                CampaignSpec::DropZone {
                    name: "drop-a".into(),
                    domains: 3,
                    bots: 2,
                    coverage: DetectionCoverage::typical(),
                },
                // Single-client campaigns (the paper: 75% of campaigns
                // have one infected client — Appendix C).
                CampaignSpec::CncFlux {
                    name: "flux-s1".into(),
                    domains: 6,
                    bots: 1,
                    obfuscated: false,
                    coverage: DetectionCoverage::typical(),
                },
                CampaignSpec::Phishing {
                    name: "phish-s1".into(),
                    domains: 4,
                    bots: 1,
                    coverage: DetectionCoverage::invisible(),
                },
                CampaignSpec::DropZone {
                    name: "drop-s1".into(),
                    domains: 3,
                    bots: 1,
                    coverage: DetectionCoverage::typical(),
                },
                CampaignSpec::Dga {
                    name: "dga-s1".into(),
                    domains: 6,
                    bots: 1,
                    coverage: DetectionCoverage::typical(),
                },
            ],
            noise: NoiseSpec {
                torrent_clients: 8,
                torrent_trackers: 40,
                teamviewer_clients: 10,
                teamviewer_servers: 15,
            },
        })
    }

    /// The `Data2012day`-like preset: a later day with a different
    /// campaign mix (more agile infrastructure, smaller herds).
    pub fn data2012_day(seed: u64) -> Self {
        let mut s = Self::data2011_day(mix(seed, 0x2012, 0));
        s.config.n_clients = 1000;
        s.config.n_benign_servers = 2400;
        s.config.mean_client_requests = 40;
        s.config.campaigns = vec![
            CampaignSpec::Dga {
                name: "zeus-2012".into(),
                domains: 10,
                bots: 3,
                coverage: DetectionCoverage::zero_day(),
            },
            CampaignSpec::CncFlux {
                name: "flux-2012".into(),
                domains: 9,
                bots: 3,
                obfuscated: false,
                coverage: DetectionCoverage::typical(),
            },
            CampaignSpec::CncFlux {
                name: "tdss-2012".into(),
                domains: 8,
                bots: 2,
                obfuscated: true,
                coverage: DetectionCoverage::typical(),
            },
            CampaignSpec::TwoStage {
                name: "bagle-2012".into(),
                download_servers: 8,
                cnc_servers: 10,
                bots: 3,
                coverage: DetectionCoverage::typical(),
            },
            CampaignSpec::Iframe {
                name: "iframe-2012".into(),
                targets: 40,
                bots: 2,
                coverage: DetectionCoverage {
                    ids2012: 0.0,
                    ids2013: 0.03,
                    blacklist: 0.03,
                    defunct: 0.0,
                },
            },
            CampaignSpec::Phishing {
                name: "phish-2012".into(),
                domains: 5,
                bots: 2,
                coverage: DetectionCoverage::invisible(),
            },
            CampaignSpec::CncFlux {
                name: "flux-s1-2012".into(),
                domains: 5,
                bots: 1,
                obfuscated: false,
                coverage: DetectionCoverage::typical(),
            },
            CampaignSpec::Dga {
                name: "dga-s1-2012".into(),
                domains: 7,
                bots: 1,
                coverage: DetectionCoverage::typical(),
            },
            CampaignSpec::DropZone {
                name: "drop-s1-2012".into(),
                domains: 3,
                bots: 1,
                coverage: DetectionCoverage::typical(),
            },
        ];
        s
    }

    /// Generates the day.
    pub fn generate(&self) -> ScenarioData {
        let plans: Vec<CampaignPlan> = self
            .config
            .campaigns
            .iter()
            .map(|spec| CampaignPlan {
                spec: spec.clone(),
                persistence: Persistence::Persistent,
                start_day: 0,
            })
            .collect();
        generate_day(&self.config, 0, &plans)
    }
}

impl WeekScenario {
    /// The `Data2012week`-like preset: seven days sharing one benign
    /// universe; persistent campaigns (Sality, iframe), agile campaigns
    /// that rotate domains daily (Zeus DGA, flux C&C, phishing), and new
    /// campaigns arriving mid-week.
    pub fn data2012_week(seed: u64) -> Self {
        let mut base = Scenario::data2012_day(seed).config;
        base.campaigns.clear();
        let plans = vec![
            CampaignPlan {
                spec: CampaignSpec::Sality {
                    name: "sality-w".into(),
                    download_servers: 12,
                    bots: 3,
                    coverage: DetectionCoverage::well_known(),
                },
                persistence: Persistence::Persistent,
                start_day: 0,
            },
            CampaignPlan {
                spec: CampaignSpec::Iframe {
                    name: "iframe-w".into(),
                    targets: 40,
                    bots: 3,
                    coverage: DetectionCoverage {
                        ids2012: 0.0,
                        ids2013: 0.03,
                        blacklist: 0.03,
                        defunct: 0.0,
                    },
                },
                // The injection sweep moves to fresh victims daily — the
                // paper observes most campaign servers are agile.
                persistence: Persistence::Agile,
                start_day: 0,
            },
            CampaignPlan {
                spec: CampaignSpec::Dga {
                    name: "zeus-w".into(),
                    domains: 9,
                    bots: 3,
                    coverage: DetectionCoverage::zero_day(),
                },
                persistence: Persistence::Agile,
                start_day: 0,
            },
            CampaignPlan {
                spec: CampaignSpec::CncFlux {
                    name: "flux-w".into(),
                    domains: 10,
                    bots: 4,
                    obfuscated: false,
                    coverage: DetectionCoverage::typical(),
                },
                persistence: Persistence::Agile,
                start_day: 0,
            },
            CampaignPlan {
                spec: CampaignSpec::Phishing {
                    name: "phish-w".into(),
                    domains: 5,
                    bots: 2,
                    coverage: DetectionCoverage::invisible(),
                },
                persistence: Persistence::Agile,
                start_day: 0,
            },
            CampaignPlan {
                spec: CampaignSpec::TwoStage {
                    name: "bagle-w".into(),
                    download_servers: 8,
                    cnc_servers: 10,
                    bots: 3,
                    coverage: DetectionCoverage::typical(),
                },
                persistence: Persistence::Agile,
                start_day: 2,
            },
            CampaignPlan {
                spec: CampaignSpec::Scanning {
                    name: "zmeu-w".into(),
                    targets: 15,
                    bots: 3,
                    coverage: DetectionCoverage {
                        ids2012: 0.05,
                        ids2013: 0.25,
                        blacklist: 0.0,
                        defunct: 0.0,
                    },
                },
                persistence: Persistence::Agile,
                start_day: 4,
            },
            CampaignPlan {
                spec: CampaignSpec::DropZone {
                    name: "drop-w-s1".into(),
                    domains: 3,
                    bots: 1,
                    coverage: DetectionCoverage::typical(),
                },
                persistence: Persistence::Agile,
                start_day: 0,
            },
        ];
        Self {
            base,
            plans,
            days: 7,
        }
    }

    /// Generates every day of the week.
    pub fn generate(&self) -> WeekData {
        let days = (0..self.days)
            .map(|d| generate_day(&self.base, d, &self.plans))
            .collect();
        WeekData { days }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_day_is_deterministic() {
        let a = Scenario::small_day(5).generate();
        let b = Scenario::small_day(5).generate();
        assert_eq!(a.dataset.record_count(), b.dataset.record_count());
        assert_eq!(a.dataset.server_count(), b.dataset.server_count());
        assert_eq!(a.truth.server_count(), b.truth.server_count());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::small_day(5).generate();
        let b = Scenario::small_day(6).generate();
        // Campaign infrastructure is seed-dependent: the planted server
        // name sets must differ (record *counts* may coincide).
        let names = |d: &ScenarioData| -> std::collections::BTreeSet<String> {
            d.truth.iter_servers().map(|(s, _)| s.to_owned()).collect()
        };
        assert_ne!(names(&a), names(&b));
    }

    #[test]
    fn small_day_has_campaign_labels_and_ids() {
        let d = Scenario::small_day(1).generate();
        assert!(d.truth.campaigns().len() >= 3);
        assert!(d.truth.malicious_server_count() >= 15);
        // The well-known scanning campaign has a 2012 pattern signature.
        assert!(d.ids2012.labeled_count() > 0);
        // The zero-day DGA only shows in the 2013 set.
        assert!(d.ids2013.labeled_count() > d.ids2012.labeled_count());
    }

    #[test]
    fn week_shares_benign_universe() {
        let mut w = WeekScenario::data2012_week(3);
        w.days = 2;
        w.base.n_clients = 80;
        w.base.n_benign_servers = 200;
        w.base.mean_client_requests = 10;
        w.base.noise = NoiseSpec::none();
        w.plans.truncate(3);
        let data = w.generate();
        assert_eq!(data.days.len(), 2);
        // Benign whois registries must agree on shared domains.
        let d0 = &data.days[0];
        let d1 = &data.days[1];
        let mut shared = 0;
        for (dom, rec) in d0.whois.iter() {
            if let Some(r2) = d1.whois.get(dom) {
                if r2 == rec {
                    shared += 1;
                }
            }
        }
        assert!(shared >= 200, "shared whois records: {shared}");
    }

    #[test]
    fn persistent_campaign_keeps_servers_agile_rotates() {
        let mut w = WeekScenario::data2012_week(9);
        w.days = 2;
        w.base.n_clients = 100;
        w.base.n_benign_servers = 200;
        w.base.mean_client_requests = 8;
        w.base.noise = NoiseSpec::none();
        let data = w.generate();
        let servers_of = |d: &ScenarioData, name: &str| -> std::collections::HashSet<String> {
            d.truth
                .campaigns()
                .iter()
                .filter(|c| c.name == name)
                .flat_map(|c| {
                    d.truth
                        .servers_of_campaign(c.id)
                        .into_iter()
                        .map(str::to_owned)
                })
                .collect()
        };
        // Persistent Sality: same servers both days.
        let s0 = servers_of(&data.days[0], "sality-w");
        let s1 = servers_of(&data.days[1], "sality-w");
        assert_eq!(s0, s1);
        assert!(!s0.is_empty());
        // Agile Zeus: fresh domains on day 2.
        let z0 = servers_of(&data.days[0], "zeus-w");
        let z1 = servers_of(&data.days[1], "zeus-w");
        assert!(!z0.is_empty() && !z1.is_empty());
        assert!(z0.is_disjoint(&z1), "agile campaign must rotate domains");
    }

    #[test]
    fn save_load_round_trip() {
        let data = Scenario::small_day(2).generate();
        let dir = std::env::temp_dir().join("smash-scenario-roundtrip");
        data.save(&dir).unwrap();
        let back = ScenarioData::load(&dir).unwrap();
        assert_eq!(back.dataset.record_count(), data.dataset.record_count());
        assert_eq!(back.dataset.server_count(), data.dataset.server_count());
        assert_eq!(back.truth.server_count(), data.truth.server_count());
        assert_eq!(back.ids2013.labeled_count(), data.ids2013.labeled_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn late_start_campaign_absent_early() {
        let mut w = WeekScenario::data2012_week(4);
        w.days = 3;
        w.base.n_clients = 80;
        w.base.n_benign_servers = 150;
        w.base.mean_client_requests = 8;
        w.base.noise = NoiseSpec::none();
        let data = w.generate();
        let has_bagle = |d: &ScenarioData| d.truth.campaigns().iter().any(|c| c.name == "bagle-w");
        assert!(!has_bagle(&data.days[0]));
        assert!(!has_bagle(&data.days[1]));
        assert!(has_bagle(&data.days[2]));
    }
}
