//! # smash-serve — the always-on campaign service.
//!
//! The paper's value is operational: ASHs surface malware campaigns
//! from live traffic *before* IDS signatures update, which only matters
//! if the detector runs continuously as a blocklist oracle rather than
//! a report printer. This crate is that service layer (DESIGN.md §13),
//! built so a process that must never stop can survive everything the
//! batch pipeline already survives — and a `SIGKILL` besides:
//!
//! * [`protocol`] — the hostile-input-proof line protocol (`INGEST` /
//!   `SEAL` / `WAIT` / `QUERY` / `STATS` / `REPORT`), with a bounded
//!   line reader that drains rather than buffers oversized lines.
//! * [`epoch`] — the write-ahead log: a sealed epoch is a checksummed
//!   `SMSHCKPT` envelope written atomically *before* it is acknowledged
//!   or mined, so restart replays exactly the acknowledged prefix.
//! * [`snapshot`] — durable-then-visible snapshot publication and the
//!   version-gated [`snapshot::SnapshotCell`] whose steady-state query
//!   path is one atomic load — queries never block on a publish.
//! * [`service`] — [`service::CampaignService`]: lenient ingest with
//!   governor-budgeted backpressure (`BUSY`), the panic-isolated,
//!   retry-supervised background miner, and crash recovery
//!   (snapshot + WAL replay) at start.
//! * [`server`] — TCP and stdio transports over one connection handler.
//!
//! Chaos coverage lives in `tests/serve.rs`: a `SIGKILL` at every
//! registered failpoint (`serve/after/seal`, `serve/mine`,
//! `serve/after/publish`) followed by a restart must converge to the
//! no-crash answers and never serve a torn snapshot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod protocol;
pub mod server;
pub mod service;
pub mod snapshot;

pub use server::{run, RunOptions};
pub use service::{CampaignService, Connection, Response, ServeOptions, WaitOutcome};
pub use snapshot::{QueryHit, ServeSnapshot, SnapshotCell, SnapshotReader};
