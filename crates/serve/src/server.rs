//! Transports for the campaign service: TCP and stdio.
//!
//! Both speak the same line protocol through the same
//! [`Connection`](crate::service::Connection) handler; the transport
//! only moves bytes. TCP serves one thread per client off a
//! non-blocking accept loop (so `SHUTDOWN` can stop it); stdio binds
//! the daemon to its parent's pipes — the mode CI and the chaos tests
//! script, where EOF is a graceful drain.

use crate::protocol::{self, RawLine};
use crate::service::{CampaignService, Response, ServeOptions};
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How to run the daemon.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Service construction knobs.
    pub serve: ServeOptions,
    /// TCP listen address (`host:port`; port 0 picks a free port).
    pub addr: Option<String>,
    /// Serve stdin/stdout instead of TCP.
    pub stdio: bool,
}

/// Runs the daemon until `SHUTDOWN` (or EOF in stdio mode). Prints
/// `LISTENING <addr>` on stdout once a TCP listener is bound — the
/// line tests and scripts parse to find the picked port.
///
/// # Errors
///
/// A human-readable message when the service cannot start or the
/// listener cannot bind.
pub fn run(opts: RunOptions) -> Result<(), String> {
    let service = CampaignService::start(opts.serve.clone())
        .map_err(|e| format!("serve: cannot start service: {e}"))?;
    let result = if opts.stdio {
        run_stdio(&service)
    } else {
        let addr = opts.addr.as_deref().unwrap_or("127.0.0.1:0");
        run_tcp(&service, addr)
    };
    service.shutdown();
    result
}

fn run_stdio(service: &CampaignService) -> Result<(), String> {
    let stdin = io::stdin();
    let mut reader = stdin.lock();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut conn = service.connection();
    let max = protocol::MAX_LINE_BYTES;
    loop {
        let line = match protocol::read_bounded_line(&mut reader, max) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e) => return Err(format!("serve: stdin read failed: {e}")),
        };
        match conn.handle(&line.bytes, line.oversized) {
            Response::Quiet => {}
            Response::Reply(reply) => {
                writeln!(out, "{reply}").map_err(|e| format!("serve: stdout write failed: {e}"))?;
                out.flush()
                    .map_err(|e| format!("serve: stdout flush failed: {e}"))?;
            }
            Response::Shutdown(reply) => {
                let _ = writeln!(out, "{reply}");
                let _ = out.flush();
                return Ok(());
            }
        }
    }
}

fn run_tcp(service: &CampaignService, addr: &str) -> Result<(), String> {
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("serve: no local addr: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("serve: cannot set nonblocking: {e}"))?;
    {
        let stdout = io::stdout();
        let mut out = stdout.lock();
        writeln!(out, "LISTENING {local}").map_err(|e| format!("serve: stdout: {e}"))?;
        out.flush().map_err(|e| format!("serve: stdout: {e}"))?;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = service.clone();
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name("smash-serve-conn".to_owned())
                    .spawn(move || serve_client(&service, stream, &stop))
                    .map_err(|e| format!("serve: cannot spawn connection thread: {e}"))?;
                handles.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("serve: accept failed: {e}")),
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// How long a connection blocks in `read` before re-checking the stop
/// flag. Bounds how long an idle (or mid-line) client can delay the
/// accept loop's thread joins after `SHUTDOWN`.
const STOP_POLL: Duration = Duration::from_millis(100);

/// One client connection; any I/O error just drops the client — a
/// mid-record disconnect must never wedge the daemon.
///
/// Reads run under [`STOP_POLL`] socket timeouts with a persistent
/// [`protocol::LineAccumulator`], so a connected-but-idle client never
/// parks this thread in `read()` past shutdown: every timeout re-checks
/// `stop` and resumes any partial line intact. A `WAIT`-parked
/// connection is unblocked the same way — `SHUTDOWN` flags the service
/// first ([`CampaignService::begin_shutdown`]), which wakes every
/// waiter with `ERR shutdown`.
fn serve_client(service: &CampaignService, stream: TcpStream, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(STOP_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut conn = service.connection();
    let mut acc = protocol::LineAccumulator::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let RawLine { bytes, oversized } =
            match protocol::read_bounded_line_into(&mut reader, protocol::MAX_LINE_BYTES, &mut acc)
            {
                Ok(Some(line)) => line,
                Ok(None) => return,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(_) => return,
            };
        match conn.handle(&bytes, oversized) {
            Response::Quiet => {}
            Response::Reply(reply) => {
                if writeln!(writer, "{reply}").is_err() {
                    return;
                }
            }
            Response::Shutdown(reply) => {
                let _ = writeln!(writer, "{reply}");
                // Flag the service before the transport stop flag:
                // WAIT-blocked connection threads wake immediately and
                // notice `stop`, instead of keeping the joins below
                // hostage for up to the WAIT timeout.
                service.begin_shutdown();
                stop.store(true, Ordering::Release);
                return;
            }
        }
    }
}
