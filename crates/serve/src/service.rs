//! The campaign service: supervised epochs over the batch pipeline.
//!
//! [`CampaignService`] owns the daemon's whole lifecycle (DESIGN.md
//! §13):
//!
//! * **Ingest** — `INGEST` lines are decoded by the same lenient
//!   per-line core as file ingest ([`smash_trace::io::decode_record_line`]);
//!   rejects get an `ERR` class and a quarantine sidecar entry, and a
//!   governor [`StageScope`] accounts every buffered byte so the
//!   service answers `BUSY` (sheds load) once the open epoch crosses
//!   its soft budget instead of growing without bound.
//! * **Seal** — the buffer becomes epoch *N*: WAL first
//!   ([`crate::epoch`]), acknowledgment second, miner wake-up third. A
//!   seal also cancels any in-flight mine through its [`CancelToken`] —
//!   the stale mine's result would cover a strict prefix of the data.
//! * **Mine** — one background worker re-mines the cumulative record
//!   set per sealed epoch, panic-isolated via [`par::run_isolated`] and
//!   supervised by the shared [`retry`] backoff schedule; a mine that
//!   survives neither isolation nor retries marks the epoch failed
//!   (visible to `WAIT`) without taking the daemon down.
//! * **Publish** — durable snapshot write, then the lock-free
//!   [`SnapshotCell`] swap ([`crate::snapshot`]).
//!
//! Chaos failpoints cover each boundary: `serve/after/seal` (WAL
//! durable, not yet acknowledged), `serve/mine` (mine attempt about to
//! start), `serve/after/publish` (snapshot durable, not yet swapped
//! in). `tests/serve.rs` SIGKILLs at every one and asserts the restart
//! converges to the no-crash answers.

use crate::epoch;
use crate::protocol::{self, ParseError, Request};
use crate::snapshot::{ServeSnapshot, SnapshotCell, SnapshotReader, SNAPSHOT_FILE};
use smash_core::config::SmashConfig;
use smash_core::Smash;
use smash_support::ckpt;
use smash_support::governor::{self, CancelToken, Governor, GovernorOptions, StageScope};
use smash_support::json::{self, ToJson};
use smash_support::metrics::Registry;
use smash_support::retry;
use smash_support::{failpoint, par};
use smash_trace::io::decode_record_line;
use smash_trace::{HttpRecord, TraceDataset};
use smash_whois::WhoisRegistry;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Directory holding the epoch WAL, the durable snapshot, and the
    /// quarantine sidecar. Created if absent.
    pub data_dir: PathBuf,
    /// Pipeline configuration used by every mine.
    pub config: SmashConfig,
    /// Soft-budgeted byte cap for the open epoch buffer (0 = no
    /// backpressure). Ingest answers `BUSY` once the governor account
    /// crosses 4/5 of this, mirroring the pipeline's degradation
    /// ladder.
    pub epoch_budget_bytes: u64,
    /// Per-stage memory budget handed to each mine (0 = unlimited).
    pub mine_memory_budget_bytes: u64,
    /// Wall-clock deadline handed to each mine (0 = none).
    pub mine_deadline_ms: u64,
    /// Per-line size cap on the wire (defaults to
    /// [`protocol::MAX_LINE_BYTES`]).
    pub max_line_bytes: usize,
}

impl ServeOptions {
    /// Defaults for `data_dir`: default pipeline config, 64 MiB epoch
    /// budget, unlimited mines.
    pub fn new<P: Into<PathBuf>>(data_dir: P) -> Self {
        Self {
            data_dir: data_dir.into(),
            config: SmashConfig::default(),
            epoch_budget_bytes: 64 << 20,
            mine_memory_budget_bytes: 0,
            mine_deadline_ms: 0,
            max_line_bytes: protocol::MAX_LINE_BYTES,
        }
    }
}

/// Ingest buffer and cumulative record state (one mutex, taken by
/// ingest, seal, and the miner's dataset snapshot).
#[derive(Default)]
struct State {
    /// Raw accepted lines of the open epoch (the future WAL payload).
    buffer_lines: Vec<String>,
    /// Decoded twins of `buffer_lines`.
    buffer_records: Vec<HttpRecord>,
    /// Bytes charged against the epoch scope for the open buffer.
    buffer_bytes: u64,
    /// Every record of every sealed epoch, in seal order.
    records: Vec<HttpRecord>,
    /// Highest epoch number ever allocated to a seal. Epoch numbers are
    /// minted under this (the state) lock — held from allocation through
    /// the WAL write — so two concurrent `SEAL`s can never observe the
    /// same value and overwrite each other's durable WAL file.
    sealed_seq: u64,
}

/// Epoch progress (separate mutex so `WAIT` and the worker never
/// contend with bulk ingest). Lock order: `State` before `Progress`.
#[derive(Default)]
struct Progress {
    /// Highest sealed (WAL-durable) epoch.
    sealed: u64,
    /// Highest published epoch.
    published: u64,
    /// Highest epoch whose mine exhausted supervision.
    failed: u64,
}

struct Inner {
    opts: ServeOptions,
    smash: Smash,
    whois: WhoisRegistry,
    metrics: Registry,
    state: Mutex<State>,
    progress: Mutex<Progress>,
    progress_cv: Condvar,
    cell: SnapshotCell,
    shutdown: AtomicBool,
    current_mine: Mutex<Option<CancelToken>>,
    epoch_scope: Arc<StageScope>,
}

/// What [`Connection::handle`] tells the transport to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Write this reply line.
    Reply(String),
    /// Blank input: write nothing.
    Quiet,
    /// Write this reply line, then drain and stop the daemon.
    Shutdown(String),
}

/// The outcome of a `WAIT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// Every sealed epoch is published; the value is the epoch served.
    Published(u64),
    /// Mining this epoch exhausted supervision; the old snapshot is
    /// still served.
    MineFailed(u64),
    /// The timeout elapsed first.
    TimedOut,
    /// The service is shutting down; no further publishes will happen.
    ShuttingDown,
}

/// A long-running campaign service over one data directory.
///
/// Cheap to clone (all state is shared); drop every clone or call
/// [`CampaignService::shutdown`] to stop the mine worker.
#[derive(Clone)]
pub struct CampaignService {
    inner: Arc<Inner>,
    worker: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl CampaignService {
    /// Starts the service: recovers the durable snapshot, replays the
    /// epoch WAL, and spawns the supervised mine worker (which
    /// immediately re-mines if the WAL is ahead of the snapshot).
    ///
    /// # Errors
    ///
    /// Only real I/O errors creating or scanning the data directory;
    /// corrupt snapshot or WAL files degrade to recompute with a
    /// warning, never to a failed start.
    pub fn start(opts: ServeOptions) -> io::Result<CampaignService> {
        fs::create_dir_all(&opts.data_dir)?;
        let metrics = Registry::new();

        // 1. Last durable snapshot, if any survives validation.
        let snap_path = opts.data_dir.join(SNAPSHOT_FILE);
        let initial = if snap_path.exists() {
            match ServeSnapshot::load(&snap_path) {
                Ok(snap) => snap,
                Err(e) => {
                    eprintln!("serve: ignoring invalid snapshot ({e}); rebuilding from WAL");
                    metrics.counter("serve/recovery/snapshot_invalid").inc();
                    ServeSnapshot::empty()
                }
            }
        } else {
            ServeSnapshot::empty()
        };
        let published = initial.epoch;

        // 2. Replay the WAL: sealed epochs are the durable truth.
        let replay = epoch::replay(&opts.data_dir)?;
        for (path, reason) in &replay.skipped {
            eprintln!(
                "serve: skipping invalid WAL file {}: {reason}",
                path.display()
            );
            metrics.counter("serve/recovery/wal_skipped").inc();
        }
        let mut state = State::default();
        let mut sealed = 0u64;
        for ep in &replay.epochs {
            sealed = sealed.max(ep.seq);
            for line in &ep.lines {
                match decode_record_line(line.as_bytes()) {
                    Ok(rec) => state.records.push(rec),
                    Err(_) => {
                        // Lines were validated at ingest; only disk rot
                        // inside a checksummed envelope gets here.
                        metrics.counter("serve/recovery/bad_replay_line").inc();
                    }
                }
            }
        }
        state.sealed_seq = sealed;
        metrics
            .counter("serve/recovery/epochs_replayed")
            .add(replay.epochs.len() as u64);
        metrics
            .counter("serve/recovery/records_replayed")
            .add(state.records.len() as u64);

        let ingest_governor = Governor::new(
            &GovernorOptions::unlimited().with_memory_budget_bytes(opts.epoch_budget_bytes),
        );
        let epoch_scope = ingest_governor.stage("serve/epoch", 0);
        let inner = Arc::new(Inner {
            smash: Smash::new(opts.config.clone()),
            whois: WhoisRegistry::new(),
            opts,
            metrics,
            state: Mutex::new(state),
            progress: Mutex::new(Progress {
                sealed,
                published,
                failed: 0,
            }),
            progress_cv: Condvar::new(),
            cell: SnapshotCell::new(Arc::new(initial)),
            shutdown: AtomicBool::new(false),
            current_mine: Mutex::new(None),
            epoch_scope,
        });
        let worker = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("smash-serve-miner".to_owned())
                .spawn(move || mine_worker(&inner))
                .map_err(io::Error::other)?
        };
        Ok(CampaignService {
            inner,
            worker: Arc::new(Mutex::new(Some(worker))),
        })
    }

    /// A per-connection handler (owns its snapshot cache).
    pub fn connection(&self) -> Connection {
        Connection {
            svc: self.clone(),
            reader: self.inner.cell.reader(),
        }
    }

    /// A fresh snapshot reader cache for [`CampaignService::query`]
    /// (each querying thread should own one).
    pub fn reader(&self) -> SnapshotReader {
        self.inner.cell.reader()
    }

    /// Looks `server` up in the published snapshot through a reader
    /// cache (the hot path the bench hammers during an in-flight mine).
    pub fn query(
        &self,
        server: &str,
        reader: &mut SnapshotReader,
    ) -> Option<crate::snapshot::QueryHit> {
        self.inner.metrics.counter("serve/query").inc();
        let snap = self.inner.cell.read(reader);
        let hit = snap.lookup(server);
        if hit.is_some() {
            self.inner.metrics.counter("serve/query_hit").inc();
        }
        hit
    }

    /// Blocks until every sealed epoch is published, the newest epoch's
    /// mine fails, shutdown begins, or `timeout` elapses.
    pub fn wait_published(&self, timeout: Duration) -> WaitOutcome {
        let deadline = std::time::Instant::now() + timeout; // lint:allow(wallclock): WAIT is a wall-clock protocol primitive
        let mut progress = self
            .inner
            .progress
            .lock()
            .expect("progress mutex not poisoned");
        loop {
            // Shutdown first: a draining daemon answers every waiter
            // immediately instead of parking them for up to the WAIT
            // timeout while the transport tries to join their threads.
            // The flag is stored under this mutex (see
            // [`CampaignService::begin_shutdown`]), so the check and the
            // condvar wait below cannot race with the notification.
            if self.inner.shutdown.load(Ordering::Acquire) {
                return WaitOutcome::ShuttingDown;
            }
            if progress.published >= progress.sealed {
                return WaitOutcome::Published(progress.published);
            }
            if progress.failed >= progress.sealed {
                return WaitOutcome::MineFailed(progress.failed);
            }
            // lint:allow(wallclock): WAIT is a wall-clock protocol primitive
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return WaitOutcome::TimedOut;
            }
            let (guard, _res) = self
                .inner
                .progress_cv
                .wait_timeout(progress, left)
                .expect("progress mutex not poisoned");
            progress = guard;
        }
    }

    /// The highest sealed / published / failed epochs.
    pub fn epochs(&self) -> (u64, u64, u64) {
        let p = self
            .inner
            .progress
            .lock()
            .expect("progress mutex not poisoned");
        (p.sealed, p.published, p.failed)
    }

    /// Signals shutdown without joining: flags the service, cancels any
    /// in-flight mine, and wakes every `WAIT`-blocked thread (which
    /// answers [`WaitOutcome::ShuttingDown`]). Idempotent; the
    /// transport calls this on `SHUTDOWN` so parked connections unblock
    /// before their threads are joined.
    ///
    /// The flag is stored while the progress mutex is held: a waiter is
    /// either about to check the flag (and sees it) or already parked
    /// on the condvar (and receives the notify) — the store can never
    /// land in the gap between a waiter's check and its wait, so no
    /// wake-up is lost and the mine worker cannot sleep through
    /// shutdown.
    pub(crate) fn begin_shutdown(&self) {
        {
            let _progress = self
                .inner
                .progress
                .lock()
                .expect("progress mutex not poisoned");
            self.inner.shutdown.store(true, Ordering::Release);
        }
        if let Some(token) = self
            .inner
            .current_mine
            .lock()
            .expect("mine token mutex not poisoned")
            .as_ref()
        {
            token.cancel(&format!("{}service shutdown", governor::CANCEL_PREFIX));
        }
        self.inner.progress_cv.notify_all();
    }

    /// Stops the mine worker: cancels any in-flight mine, wakes every
    /// waiter, and joins. Idempotent.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let handle = self
            .worker
            .lock()
            .expect("worker handle mutex not poisoned")
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// One service counter (testing and stats).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.metrics.counter(name).get()
    }

    fn ingest(&self, payload: &str) -> Response {
        let inner = &*self.inner;
        if payload.len() > inner.opts.max_line_bytes {
            inner.metrics.counter("serve/ingest/oversized").inc();
            self.quarantine_line(payload.as_bytes());
            return Response::Reply("ERR oversized".to_owned());
        }
        let mut state = inner.state.lock().expect("state mutex not poisoned");
        let bytes = payload.len() as u64;
        if inner.opts.epoch_budget_bytes > 0
            && inner.epoch_scope.tracked_bytes() + bytes > inner.epoch_scope.soft_bytes()
        {
            // Governor-driven load shedding: the open epoch crossed its
            // soft budget; the client must SEAL (or back off) first.
            if inner.metrics.counter("serve/ingest/busy").get() == 0 {
                inner.epoch_scope.record(format!(
                    "epoch buffer crossed soft budget ({} bytes): shedding ingest",
                    inner.epoch_scope.soft_bytes()
                ));
            }
            inner.metrics.counter("serve/ingest/busy").inc();
            return Response::Reply("BUSY".to_owned());
        }
        match decode_record_line(payload.as_bytes()) {
            Ok(record) => {
                inner.epoch_scope.charge(bytes);
                state.buffer_bytes += bytes;
                state.buffer_lines.push(payload.to_owned());
                state.buffer_records.push(record);
                inner.metrics.counter("serve/ingest/ok").inc();
                Response::Reply("OK".to_owned())
            }
            Err(e) => {
                drop(state);
                inner.metrics.counter("serve/ingest/rejected").inc();
                inner
                    .metrics
                    .counter(&format!("serve/ingest/{}", e.class()))
                    .inc();
                self.quarantine_line(payload.as_bytes());
                Response::Reply(format!("ERR {}", e.class()))
            }
        }
    }

    /// Appends a rejected raw line to the quarantine sidecar through
    /// the shared retry policy — mirroring file ingest, so hostile
    /// wire bytes and hostile trace bytes land in the same place.
    ///
    /// Each call opens its own append-mode handle and writes the line
    /// (terminator included) in one `write_all`: O_APPEND keeps
    /// concurrent lines whole, and no service-wide lock is held across
    /// the retry backoff — a persistently failing sidecar (full disk)
    /// slows only the connection that hit it, never every rejecting
    /// connection at once.
    fn quarantine_line(&self, raw: &[u8]) {
        let inner = &*self.inner;
        let path = inner.opts.data_dir.join("quarantine.jsonl");
        let mut entry = Vec::with_capacity(raw.len() + 1);
        entry.extend_from_slice(raw);
        entry.push(b'\n');
        let seed = ckpt::fnv1a(path.as_os_str().as_encoded_bytes());
        let (res, _retries) = retry::retry_transient(seed, || -> io::Result<()> {
            failpoint::check("ingest/quarantine").map_err(io::Error::other)?;
            let mut file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)?;
            use std::io::Write as _;
            file.write_all(&entry)?;
            Ok(())
        });
        match res {
            Ok(()) => inner.metrics.counter("serve/ingest/quarantined").inc(),
            Err(e) => {
                eprintln!("serve: quarantine write failed: {e}");
                inner
                    .metrics
                    .counter("serve/ingest/quarantine_failed")
                    .inc();
            }
        }
    }

    fn seal(&self) -> Response {
        let inner = &*self.inner;
        let mut state = inner.state.lock().expect("state mutex not poisoned");
        if state.buffer_records.is_empty() {
            inner.metrics.counter("serve/seal/empty").inc();
            return Response::Reply("ERR empty-epoch".to_owned());
        }
        // The epoch number is allocated *and committed* under the state
        // lock, which is held across the WAL write: a concurrent SEAL
        // blocks on the lock and mints the next number, so no two seals
        // can ever target the same `epoch-<seq>.wal` (an overwrite
        // would silently drop an acknowledged epoch from replay).
        let seq = state.sealed_seq + 1;
        // WAL first: the epoch is durable before it is acknowledged or
        // mined. A crash past this point replays identically.
        if let Err(e) = epoch::write_epoch(&inner.opts.data_dir, seq, &state.buffer_lines) {
            eprintln!("serve: epoch {seq} WAL write failed: {e}");
            inner.metrics.counter("serve/seal/wal_failed").inc();
            return Response::Reply("ERR wal-write".to_owned());
        }
        state.sealed_seq = seq;
        failpoint::fire("serve/after/seal");
        let records = state.buffer_records.len();
        state.buffer_lines.clear();
        let moved: Vec<HttpRecord> = state.buffer_records.drain(..).collect();
        state.records.extend(moved);
        let freed = std::mem::take(&mut state.buffer_bytes);
        inner.epoch_scope.release(freed);
        drop(state);
        // A fresh epoch supersedes any in-flight mine: cancel it so the
        // worker converges on the newest data instead of finishing a
        // stale pass.
        if let Some(token) = inner
            .current_mine
            .lock()
            .expect("mine token mutex not poisoned")
            .as_ref()
        {
            if token.cancel(&format!(
                "{}superseded by epoch {seq}",
                governor::CANCEL_PREFIX
            )) {
                inner.metrics.counter("serve/mine/superseded").inc();
            }
        }
        let mut progress = inner.progress.lock().expect("progress mutex not poisoned");
        // `max`, not assignment: two seals that raced past the state
        // lock may reach this update out of order.
        progress.sealed = progress.sealed.max(seq);
        inner.progress_cv.notify_all();
        drop(progress);
        inner.metrics.counter("serve/seal/ok").inc();
        Response::Reply(format!("OK epoch={seq} records={records}"))
    }

    fn stats_json(&self) -> String {
        let inner = &*self.inner;
        let (sealed, published, failed) = self.epochs();
        let (buffer_records, buffer_bytes) = {
            let state = inner.state.lock().expect("state mutex not poisoned");
            (state.buffer_records.len(), state.buffer_bytes)
        };
        let retry = retry::counters();
        let mut counters: BTreeMap<String, json::Json> = BTreeMap::new();
        for (name, value) in inner.metrics.snapshot().counters {
            if name.starts_with("serve/") {
                counters.insert(name, value.to_json());
            }
        }
        let mut root: BTreeMap<String, json::Json> = BTreeMap::new();
        root.insert("sealed".to_owned(), sealed.to_json());
        root.insert("published".to_owned(), published.to_json());
        root.insert("failed".to_owned(), failed.to_json());
        root.insert("buffer_records".to_owned(), buffer_records.to_json());
        root.insert("buffer_bytes".to_owned(), buffer_bytes.to_json());
        root.insert(
            "snapshot_epoch".to_owned(),
            self.inner.cell.peek().epoch.to_json(),
        );
        root.insert("counters".to_owned(), counters.to_json());
        let mut retry_obj: BTreeMap<String, json::Json> = BTreeMap::new();
        retry_obj.insert("ops".to_owned(), retry.ops.to_json());
        retry_obj.insert("backoffs".to_owned(), retry.backoffs.to_json());
        retry_obj.insert("exhausted".to_owned(), retry.exhausted.to_json());
        root.insert("retry".to_owned(), retry_obj.to_json());
        json::to_string(&root.to_json())
    }
}

/// One protocol connection: a service handle plus its snapshot cache.
pub struct Connection {
    svc: CampaignService,
    reader: SnapshotReader,
}

impl Connection {
    /// Handles one raw request line (`oversized` from the bounded
    /// reader). Total: every input maps to a [`Response`]; nothing
    /// panics and nothing wedges the daemon.
    pub fn handle(&mut self, raw: &[u8], oversized: bool) -> Response {
        if oversized {
            self.svc
                .inner
                .metrics
                .counter("serve/proto/oversized")
                .inc();
            return Response::Reply("ERR oversized".to_owned());
        }
        let request = match protocol::parse_line(raw) {
            Ok(Some(req)) => req,
            Ok(None) => return Response::Quiet,
            Err(e) => {
                self.svc.inner.metrics.counter("serve/proto/rejected").inc();
                if matches!(e, ParseError::BadUtf8) {
                    // Binary garbage aimed at INGEST still deserves a
                    // quarantine entry for offline inspection.
                    self.svc.quarantine_line(raw);
                }
                return Response::Reply(e.reply());
            }
        };
        match request {
            Request::Ping => Response::Reply("PONG".to_owned()),
            Request::Ingest(payload) => self.svc.ingest(&payload),
            Request::Seal => self.svc.seal(),
            Request::Wait => match self.svc.wait_published(Duration::from_secs(120)) {
                WaitOutcome::Published(epoch) => Response::Reply(format!("OK epoch={epoch}")),
                WaitOutcome::MineFailed(epoch) => {
                    Response::Reply(format!("ERR mine-failed epoch={epoch}"))
                }
                WaitOutcome::TimedOut => Response::Reply("ERR timeout".to_owned()),
                WaitOutcome::ShuttingDown => Response::Reply("ERR shutdown".to_owned()),
            },
            Request::Query(server) => match self.svc.query(&server, &mut self.reader) {
                Some(hit) => Response::Reply(hit.reply()),
                None => Response::Reply("MISS".to_owned()),
            },
            Request::Stats => Response::Reply(self.svc.stats_json()),
            Request::Report => {
                let snap = self.svc.inner.cell.read(&mut self.reader);
                Response::Reply(snap.campaigns_canonical_json())
            }
            Request::Shutdown => Response::Shutdown("OK".to_owned()),
        }
    }
}

/// Waits for work; returns the target epoch, or `None` on shutdown.
fn next_target(inner: &Inner) -> Option<u64> {
    let mut progress: MutexGuard<Progress> =
        inner.progress.lock().expect("progress mutex not poisoned");
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return None;
        }
        if progress.sealed > progress.published.max(progress.failed) {
            return Some(progress.sealed);
        }
        progress = inner
            .progress_cv
            .wait(progress)
            .expect("progress mutex not poisoned");
    }
}

/// The supervised background miner (one per service).
fn mine_worker(inner: &Inner) {
    while let Some(target) = next_target(inner) {
        let records = {
            let state = inner.state.lock().expect("state mutex not poisoned");
            state.records.clone()
        };
        let token = CancelToken::new();
        *inner
            .current_mine
            .lock()
            .expect("mine token mutex not poisoned") = Some(token.clone());
        inner.metrics.counter("serve/mine/started").inc();
        let gov = GovernorOptions {
            memory_budget_bytes: inner.opts.mine_memory_budget_bytes,
            deadline_ms: inner.opts.mine_deadline_ms,
            cancel: Some(token.clone()),
        };
        // Supervision: panic isolation inside, the shared deterministic
        // backoff schedule outside. A mine that dies (injected fault,
        // real bug, governor cancellation) is retried up to the retry
        // budget; exhaustion marks the epoch failed and keeps serving
        // the previous snapshot.
        let seed = ckpt::fnv1a(format!("serve/mine/{target}").as_bytes());
        let (result, retries) = retry::retry_transient(seed, || {
            failpoint::check("serve/mine")?;
            if token.is_cancelled() {
                // Don't burn retry attempts re-running a superseded or
                // shutting-down mine; the outer loop re-targets.
                return Err("mine cancelled".to_owned());
            }
            let dataset = TraceDataset::from_records(records.clone());
            par::run_isolated(|| {
                inner
                    .smash
                    .run_governed(&dataset, &inner.whois, &inner.metrics, None, Some(&gov))
            })
        });
        if retries > 0 {
            inner
                .metrics
                .counter("serve/mine/restarts")
                .add(u64::from(retries));
        }
        *inner
            .current_mine
            .lock()
            .expect("mine token mutex not poisoned") = None;
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let superseded = {
            let progress = inner.progress.lock().expect("progress mutex not poisoned");
            progress.sealed > target
        };
        if superseded {
            // A newer epoch sealed while this mine ran: its result
            // covers a strict prefix; loop and mine the new target.
            continue;
        }
        match result {
            Ok(report) => {
                if token.is_cancelled() {
                    continue;
                }
                let prev = inner.cell.peek();
                let snap = ServeSnapshot::from_report(target, &report, &prev);
                let path = inner.opts.data_dir.join(SNAPSHOT_FILE);
                match snap.save(&path) {
                    Ok(()) => {
                        failpoint::fire("serve/after/publish");
                        inner.cell.publish(Arc::new(snap));
                        let mut progress =
                            inner.progress.lock().expect("progress mutex not poisoned");
                        progress.published = progress.published.max(target);
                        inner.progress_cv.notify_all();
                        drop(progress);
                        inner.metrics.counter("serve/publish/ok").inc();
                    }
                    Err(e) => {
                        eprintln!("serve: snapshot publish for epoch {target} failed: {e}");
                        inner.metrics.counter("serve/publish/failed").inc();
                        mark_failed(inner, target);
                    }
                }
            }
            Err(msg) => {
                eprintln!("serve: mine for epoch {target} exhausted supervision: {msg}");
                inner.metrics.counter("serve/mine/failed").inc();
                mark_failed(inner, target);
            }
        }
    }
}

fn mark_failed(inner: &Inner, target: u64) {
    let mut progress = inner.progress.lock().expect("progress mutex not poisoned");
    progress.failed = progress.failed.max(target);
    inner.progress_cv.notify_all();
}

impl std::fmt::Debug for CampaignService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (sealed, published, failed) = self.epochs();
        f.debug_struct("CampaignService")
            .field("data_dir", &self.inner.opts.data_dir)
            .field("sealed", &sealed)
            .field("published", &published)
            .field("failed", &failed)
            .finish()
    }
}
