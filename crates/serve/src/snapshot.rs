//! Published campaign snapshots: durable first, visible second.
//!
//! A snapshot is the immutable answer surface for `QUERY`: the campaign
//! list mined from every sealed epoch up to `epoch`, plus the
//! `first_seen` history ("since when") carried forward across
//! publishes. Publishing is two ordered steps — (1) write the snapshot
//! into `snapshot.ckpt` (checksummed `SMSHCKPT` envelope, atomic tmp +
//! rename, transient faults retried), (2) swap it into the in-memory
//! [`SnapshotCell`]. A crash between the steps leaves a *newer* durable
//! snapshot than was ever served, which the restart simply publishes;
//! a crash before step 1 leaves the previous snapshot, which is rebuilt
//! from the WAL. No interleaving serves a torn or unwritten snapshot.
//!
//! # Swap memory ordering
//!
//! The workspace forbids `unsafe`, so the cell is not an `AtomicPtr`
//! trick: it is a version counter (`AtomicU64`) next to a
//! mutex-guarded `Arc` slot. Readers keep a per-connection
//! [`SnapshotReader`] cache and reload only when the version moves, so
//! the steady-state query path is one `Acquire` load plus an `Arc`
//! clone — no lock, no allocation, and queries never block on a
//! publish. The publisher stores the slot under the mutex *before* the
//! `Release` bump, so a reader that observes the new version always
//! finds the new `Arc` behind the lock.

use smash_core::report::{InferredCampaign, SmashReport};
use smash_support::ckpt::{self, CkptError};
use smash_support::impl_json_struct;
use smash_support::json::{self, FromJson, ToJson};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The envelope stage name of the durable snapshot file.
pub const SNAPSHOT_STAGE: &str = "serve/snapshot";
/// The durable snapshot's file name inside the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.ckpt";

/// The serialized surface of a snapshot (`first_seen` flattened into
/// parallel vectors to stay inside the workspace's JSON macro).
#[derive(Debug, Clone, Default)]
struct SnapshotDoc {
    epoch: u64,
    kept_servers: usize,
    dropped_popular: usize,
    campaigns: Vec<InferredCampaign>,
    first_seen_servers: Vec<String>,
    first_seen_epochs: Vec<u64>,
}
impl_json_struct!(SnapshotDoc {
    epoch,
    kept_servers,
    dropped_popular,
    campaigns,
    first_seen_servers,
    first_seen_epochs,
});

/// One immutable published answer surface.
#[derive(Debug, Default)]
pub struct ServeSnapshot {
    /// Highest epoch whose records this snapshot covers (0 = cold).
    pub epoch: u64,
    /// Servers surviving the IDF popularity filter in the covered mine.
    pub kept_servers: usize,
    /// Servers dropped as popular in the covered mine.
    pub dropped_popular: usize,
    /// The inferred campaigns, in the pipeline's deterministic order.
    pub campaigns: Vec<InferredCampaign>,
    /// Epoch at which each server first appeared in a *published*
    /// campaign. Entries are kept even if the server later leaves, so
    /// `since` is stable across membership flicker.
    pub first_seen: BTreeMap<String, u64>,
    /// server name -> (campaign index, member index); derived, never
    /// serialized.
    member_of: BTreeMap<String, (usize, usize)>,
}

/// A successful `QUERY` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHit {
    /// Index of the campaign in [`ServeSnapshot::campaigns`].
    pub campaign: usize,
    /// Member count of that campaign.
    pub size: usize,
    /// The queried server's eq. 9 score within the campaign.
    pub score: f64,
    /// Epoch at which the server first appeared in a published campaign.
    pub since: u64,
}

impl QueryHit {
    /// The protocol `HIT` reply line.
    pub fn reply(&self) -> String {
        format!(
            "HIT campaign={} size={} score={:.6} since={}",
            self.campaign, self.size, self.score, self.since
        )
    }
}

impl ServeSnapshot {
    /// The cold snapshot served before anything was ever mined.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds the epoch-`epoch` snapshot from a mined report, carrying
    /// the `first_seen` history forward from the previously published
    /// snapshot.
    pub fn from_report(epoch: u64, report: &SmashReport, prev: &ServeSnapshot) -> Self {
        let mut snap = Self {
            epoch,
            kept_servers: report.kept_servers,
            dropped_popular: report.dropped_popular,
            campaigns: report.campaigns.clone(),
            first_seen: prev.first_seen.clone(),
            member_of: BTreeMap::new(),
        };
        for campaign in &snap.campaigns {
            for server in &campaign.servers {
                snap.first_seen.entry(server.clone()).or_insert(epoch);
            }
        }
        snap.reindex();
        snap
    }

    fn reindex(&mut self) {
        self.member_of.clear();
        for (ci, campaign) in self.campaigns.iter().enumerate() {
            for (mi, server) in campaign.servers.iter().enumerate() {
                self.member_of.entry(server.clone()).or_insert((ci, mi));
            }
        }
    }

    /// Looks `server` up in the published campaigns.
    pub fn lookup(&self, server: &str) -> Option<QueryHit> {
        let &(ci, mi) = self.member_of.get(server)?;
        let campaign = self.campaigns.get(ci)?;
        Some(QueryHit {
            campaign: ci,
            size: campaign.servers.len(),
            score: campaign.scores.get(mi).copied().unwrap_or(0.0),
            since: self.first_seen.get(server).copied().unwrap_or(self.epoch),
        })
    }

    /// The published campaign list as one canonical JSON line (the
    /// `REPORT` reply; byte-identical across replayed and cold runs).
    pub fn campaigns_canonical_json(&self) -> String {
        json::to_string(&self.campaigns.to_json())
    }

    /// Writes the snapshot durably: enveloped, checksummed, atomic,
    /// transient faults retried.
    ///
    /// # Errors
    ///
    /// [`CkptError`] if the write fails past the retry budget.
    pub fn save(&self, path: &Path) -> Result<(), CkptError> {
        let doc = SnapshotDoc {
            epoch: self.epoch,
            kept_servers: self.kept_servers,
            dropped_popular: self.dropped_popular,
            campaigns: self.campaigns.clone(),
            first_seen_servers: self.first_seen.keys().cloned().collect(),
            first_seen_epochs: self.first_seen.values().copied().collect(),
        };
        let payload = json::to_string(&doc.to_json());
        ckpt::write_value_snapshot(path, SNAPSHOT_STAGE, payload.as_str()).map(|_| ())
    }

    /// Reads a durable snapshot back, validating the envelope end to
    /// end — a torn, truncated, or foreign file is an error, never a
    /// half-trusted snapshot.
    ///
    /// # Errors
    ///
    /// [`CkptError`] on any validation or decode failure.
    pub fn load(path: &Path) -> Result<Self, CkptError> {
        let payload: String = ckpt::read_value_snapshot(path, SNAPSHOT_STAGE)?;
        let value = json::parse(&payload)
            .map_err(|e| CkptError::Corrupt(format!("snapshot payload is not JSON: {e}")))?;
        let doc = SnapshotDoc::from_json(&value)
            .map_err(|e| CkptError::Corrupt(format!("snapshot payload does not decode: {e}")))?;
        if doc.first_seen_servers.len() != doc.first_seen_epochs.len() {
            return Err(CkptError::Corrupt(
                "first_seen vectors disagree in length".to_owned(),
            ));
        }
        let mut snap = Self {
            epoch: doc.epoch,
            kept_servers: doc.kept_servers,
            dropped_popular: doc.dropped_popular,
            campaigns: doc.campaigns,
            first_seen: doc
                .first_seen_servers
                .into_iter()
                .zip(doc.first_seen_epochs)
                .collect(),
            member_of: BTreeMap::new(),
        };
        snap.reindex();
        Ok(snap)
    }
}

/// A per-connection cache over the [`SnapshotCell`]: the last version
/// observed and the `Arc` it resolved to.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    version: u64,
    cached: Arc<ServeSnapshot>,
}

/// The atomically-swapped publication point (ordering contract in the
/// module docs).
#[derive(Debug)]
pub struct SnapshotCell {
    version: AtomicU64,
    slot: Mutex<Arc<ServeSnapshot>>,
}

impl SnapshotCell {
    /// A cell serving `initial` at version 1.
    pub fn new(initial: Arc<ServeSnapshot>) -> Self {
        Self {
            version: AtomicU64::new(1),
            slot: Mutex::new(initial),
        }
    }

    /// Publishes `snap`: slot first (under the mutex), then the
    /// `Release` version bump that makes it visible to readers.
    pub fn publish(&self, snap: Arc<ServeSnapshot>) {
        let mut guard = self.slot.lock().expect("snapshot slot mutex not poisoned");
        *guard = snap;
        self.version.fetch_add(1, Ordering::Release);
    }

    /// The currently published snapshot (takes the mutex; use
    /// [`SnapshotCell::read`] with a [`SnapshotReader`] on hot paths).
    pub fn peek(&self) -> Arc<ServeSnapshot> {
        Arc::clone(&self.slot.lock().expect("snapshot slot mutex not poisoned"))
    }

    /// A fresh reader cache, primed with the current snapshot.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            version: self.version.load(Ordering::Acquire),
            cached: self.peek(),
        }
    }

    /// The reader-side fast path: one `Acquire` load; the mutex is
    /// touched only when the version moved since the last call.
    pub fn read(&self, reader: &mut SnapshotReader) -> Arc<ServeSnapshot> {
        let version = self.version.load(Ordering::Acquire);
        if version != reader.version {
            reader.cached = self.peek();
            reader.version = version;
        }
        Arc::clone(&reader.cached)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_swap_is_visible_and_cached() {
        let cell = SnapshotCell::new(Arc::new(ServeSnapshot::empty()));
        let mut reader = cell.reader();
        assert_eq!(cell.read(&mut reader).epoch, 0);
        let mut next = ServeSnapshot::empty();
        next.epoch = 3;
        cell.publish(Arc::new(next));
        assert_eq!(cell.read(&mut reader).epoch, 3);
        // Unchanged version: the same Arc is served from cache.
        let again = cell.read(&mut reader);
        assert_eq!(again.epoch, 3);
    }

    #[test]
    fn snapshot_save_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("smash-serve-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        let path = dir.join(SNAPSHOT_FILE);
        let mut snap = ServeSnapshot::empty();
        snap.epoch = 5;
        snap.kept_servers = 12;
        snap.first_seen.insert("cc0.evil".to_owned(), 2);
        snap.save(&path).expect("save");
        let back = ServeSnapshot::load(&path).expect("load");
        assert_eq!(back.epoch, 5);
        assert_eq!(back.kept_servers, 12);
        assert_eq!(back.first_seen.get("cc0.evil"), Some(&2));
        // Truncation must be detected, never half-trusted.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(ServeSnapshot::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
