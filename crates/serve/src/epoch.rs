//! The epoch write-ahead log: sealed ingest, made durable before mining.
//!
//! An epoch is the daemon's unit of durability. `INGEST` lines
//! accumulate in a bounded in-memory buffer; `SEAL` freezes the buffer
//! into epoch *N* by writing every accepted raw line into
//! `epoch-<N>.wal` — a `SMSHCKPT` envelope (stage `epoch/<N>`, payload
//! the wire-encoded line list) written atomically through the shared
//! retry policy ([`smash_support::retry`]). Only after the rename lands
//! is the epoch acknowledged and handed to the miner.
//!
//! The replay invariant follows directly: a WAL file either exists
//! complete-and-checksummed or not at all, so a process killed at *any*
//! instant restarts to a prefix of the acknowledged epochs — never a
//! torn one. Corrupt files (disk rot, foreign bytes) are skipped with a
//! warning, exactly like a corrupt checkpoint snapshot degrades to
//! recompute (DESIGN.md §9).

use smash_support::ckpt::{self, CkptError};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File-name prefix of every WAL file in the data directory.
pub const WAL_PREFIX: &str = "epoch-";
/// File-name suffix of every WAL file in the data directory.
pub const WAL_SUFFIX: &str = ".wal";

/// The envelope stage name binding a WAL file to its epoch number; a
/// file renamed to another epoch fails validation like a bit flip.
pub fn wal_stage(seq: u64) -> String {
    format!("epoch/{seq}")
}

/// The WAL file path for epoch `seq` (zero-padded so lexical order is
/// numeric order).
pub fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{WAL_PREFIX}{seq:08}{WAL_SUFFIX}"))
}

/// Persists epoch `seq`: the accepted raw record lines, enveloped and
/// atomically written (tmp + rename, transient faults retried).
///
/// # Errors
///
/// [`CkptError`] if the write fails past the retry budget.
pub fn write_epoch(dir: &Path, seq: u64, lines: &[String]) -> Result<(), CkptError> {
    ckpt::write_value_snapshot(&wal_path(dir, seq), &wal_stage(seq), lines).map(|_| ())
}

/// One epoch recovered from the WAL.
#[derive(Debug, Clone)]
pub struct ReplayedEpoch {
    /// The epoch number, parsed from the file name and verified against
    /// the envelope's stage.
    pub seq: u64,
    /// The epoch's raw record lines, exactly as acknowledged.
    pub lines: Vec<String>,
}

/// The outcome of scanning a data directory for sealed epochs.
#[derive(Debug, Default)]
pub struct Replay {
    /// Valid epochs in ascending `seq` order.
    pub epochs: Vec<ReplayedEpoch>,
    /// WAL files that failed validation, with the reason each was
    /// skipped.
    pub skipped: Vec<(PathBuf, String)>,
}

/// Scans `dir` for `epoch-*.wal` files and replays every valid one in
/// ascending epoch order. Files that are not WAL files are ignored;
/// WAL files that fail envelope validation are reported in
/// [`Replay::skipped`], never trusted.
///
/// # Errors
///
/// Only a real I/O error listing the directory; per-file read errors
/// are downgraded to skips.
pub fn replay(dir: &Path) -> io::Result<Replay> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    let mut out = Replay::default();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(WAL_PREFIX)
            .and_then(|s| s.strip_suffix(WAL_SUFFIX))
        else {
            continue;
        };
        match stem.parse::<u64>() {
            Ok(seq) => found.push((seq, entry.path())),
            Err(_) => out
                .skipped
                .push((entry.path(), "unparseable epoch number".to_owned())),
        }
    }
    found.sort_unstable();
    for (seq, path) in found {
        match ckpt::read_value_snapshot::<Vec<String>>(&path, &wal_stage(seq)) {
            Ok(lines) => out.epochs.push(ReplayedEpoch { seq, lines }),
            Err(e) => out.skipped.push((path, e.to_string())),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("smash-serve-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn wal_round_trips_in_order() {
        let dir = tmp_dir("roundtrip");
        write_epoch(&dir, 2, &["b".to_owned()]).expect("write");
        write_epoch(&dir, 1, &["a1".to_owned(), "a2".to_owned()]).expect("write");
        let replay = replay(&dir).expect("replay");
        assert!(replay.skipped.is_empty());
        let seqs: Vec<u64> = replay.epochs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(replay.epochs[0].lines, vec!["a1", "a2"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_wal_is_skipped_not_trusted() {
        let dir = tmp_dir("corrupt");
        write_epoch(&dir, 1, &["good".to_owned()]).expect("write");
        fs::write(wal_path(&dir, 2), b"definitely not an envelope").expect("write garbage");
        // A valid envelope renamed to the wrong epoch must also fail.
        write_epoch(&dir, 3, &["mislabeled".to_owned()]).expect("write");
        fs::rename(wal_path(&dir, 3), wal_path(&dir, 4)).expect("rename");
        let replay = replay(&dir).expect("replay");
        assert_eq!(replay.epochs.len(), 1);
        assert_eq!(replay.epochs[0].seq, 1);
        assert_eq!(replay.skipped.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
