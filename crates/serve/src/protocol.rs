//! The `smash serve` line protocol: parse-hostile by construction.
//!
//! One request per line, one reply per line, UTF-8 text over TCP or
//! stdin. The parser is the daemon's outermost trust boundary: whatever
//! bytes arrive — binary garbage, an unterminated line cut by a
//! disconnect, a line megabytes long — the worst outcome is an `ERR`
//! reply (or a quarantine entry for `INGEST` payloads), never a panic
//! and never a wedged worker (property-fuzzed in `tests/serve.rs`).
//!
//! ```text
//! PING                     -> PONG
//! INGEST {"timestamp":..}  -> OK | BUSY | ERR <class>
//! SEAL                     -> OK epoch=<seq> records=<n> | ERR <class>
//! WAIT                     -> OK epoch=<seq> | ERR <class>
//! QUERY <server>           -> HIT campaign=<id> size=<n> score=<s> since=<epoch> | MISS
//! STATS                    -> one JSON object
//! REPORT                   -> the published campaign list, canonical JSON
//! SHUTDOWN                 -> OK (then the daemon drains and exits)
//! ```

use std::io::{self, BufRead};

/// Longest accepted request line. Longer lines are consumed (so the
/// stream stays in sync) but answered with `ERR oversized` — the guard
/// that keeps a hostile client from ballooning daemon memory.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One raw JSONL record for the open epoch (payload kept verbatim —
    /// it becomes the WAL line on seal).
    Ingest(String),
    /// Seal the open epoch: persist its WAL and hand it to the miner.
    Seal,
    /// Block until every sealed epoch is published (or mining failed).
    Wait,
    /// Look a server up in the published snapshot.
    Query(String),
    /// Service counters as one JSON line.
    Stats,
    /// The published campaign list as canonical JSON.
    Report,
    /// Graceful drain and exit.
    Shutdown,
}

/// Why a request line was rejected. Every variant maps to an `ERR`
/// reply; none of them disturbs connection or daemon state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line was not valid UTF-8.
    BadUtf8,
    /// The line exceeded [`MAX_LINE_BYTES`] (already consumed).
    Oversized(usize),
    /// The leading word was not a known command.
    UnknownCommand(String),
    /// The command requires an argument that was missing.
    MissingArg(&'static str),
}

impl ParseError {
    /// The error-class slug used in the `ERR` reply.
    pub fn class(&self) -> &'static str {
        match self {
            ParseError::BadUtf8 => "bad-utf8",
            ParseError::Oversized(_) => "oversized",
            ParseError::UnknownCommand(_) => "unknown-command",
            ParseError::MissingArg(_) => "missing-arg",
        }
    }

    /// The full `ERR` reply line for this rejection.
    pub fn reply(&self) -> String {
        match self {
            ParseError::MissingArg(name) => format!("ERR {} {name}", self.class()),
            _ => format!("ERR {}", self.class()),
        }
    }
}

/// Parses one request line (terminator already stripped). `None` means
/// the line was blank and deserves no reply at all.
///
/// # Errors
///
/// A [`ParseError`] naming the rejection class; never panics, whatever
/// the bytes.
pub fn parse_line(raw: &[u8]) -> Result<Option<Request>, ParseError> {
    if raw.len() > MAX_LINE_BYTES {
        return Err(ParseError::Oversized(raw.len()));
    }
    let text = std::str::from_utf8(raw).map_err(|_| ParseError::BadUtf8)?;
    let text = text.trim_matches(|c: char| c == '\r' || c == '\n');
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let (word, rest) = match trimmed.find(char::is_whitespace) {
        Some(i) => {
            let (w, r) = trimmed.split_at(i);
            (w, r.trim_start())
        }
        None => (trimmed, ""),
    };
    let req = match word {
        "PING" => Request::Ping,
        "INGEST" => {
            if rest.is_empty() {
                return Err(ParseError::MissingArg("record"));
            }
            Request::Ingest(rest.to_owned())
        }
        "SEAL" => Request::Seal,
        "WAIT" => Request::Wait,
        "QUERY" => {
            if rest.is_empty() {
                return Err(ParseError::MissingArg("server"));
            }
            Request::Query(rest.to_owned())
        }
        "STATS" => Request::Stats,
        "REPORT" => Request::Report,
        "SHUTDOWN" => Request::Shutdown,
        other => return Err(ParseError::UnknownCommand(other.to_owned())),
    };
    Ok(Some(req))
}

/// One raw line off the wire, read with a hard size cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawLine {
    /// The line's bytes, terminator stripped, truncated at the cap.
    pub bytes: Vec<u8>,
    /// Whether the line blew past [`MAX_LINE_BYTES`]. The excess was
    /// consumed and discarded, so the stream stays line-synchronized.
    pub oversized: bool,
}

/// Partial-line state carried across [`read_bounded_line_into`] calls.
///
/// Lets a transport read with a socket timeout: a `WouldBlock` /
/// `TimedOut` error surfaces to the caller (to re-check its stop flag)
/// while whatever prefix of the line already arrived stays buffered
/// here, so the retry resumes mid-line instead of corrupting the
/// stream.
#[derive(Debug, Default)]
pub struct LineAccumulator {
    bytes: Vec<u8>,
    oversized: bool,
    saw_any: bool,
}

impl LineAccumulator {
    /// An empty accumulator (no partial line pending).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the accumulated line and resets for the next one.
    fn take(&mut self) -> RawLine {
        let line = RawLine {
            bytes: std::mem::take(&mut self.bytes),
            oversized: self.oversized,
        };
        *self = Self::default();
        line
    }
}

/// Reads one `\n`-terminated line, never buffering more than
/// `max_bytes`. An oversized line is drained to its newline and flagged
/// rather than returned whole. `Ok(None)` is clean EOF; a final
/// unterminated fragment (mid-record disconnect) is returned as a
/// normal line for the caller to reject or parse.
///
/// # Errors
///
/// Only real I/O errors from the underlying reader.
pub fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
) -> io::Result<Option<RawLine>> {
    read_bounded_line_into(reader, max_bytes, &mut LineAccumulator::new())
}

/// [`read_bounded_line`] with caller-owned partial-line state: on a
/// timeout-class error (`WouldBlock`/`TimedOut` from a socket read
/// deadline) the bytes consumed so far stay in `acc`, and calling again
/// with the same `acc` resumes the same line. Any returned line resets
/// `acc` for the next one.
///
/// # Errors
///
/// I/O errors from the underlying reader; timeout-class errors are
/// resumable, anything else should end the connection.
pub fn read_bounded_line_into<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
    acc: &mut LineAccumulator,
) -> io::Result<Option<RawLine>> {
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            // EOF: a partial fragment is still a line (the disconnect
            // case); nothing buffered means clean end of stream.
            if acc.saw_any {
                return Ok(Some(acc.take()));
            }
            return Ok(None);
        }
        acc.saw_any = true;
        let (content_len, consume_len, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i, i + 1, true),
            None => (buf.len(), buf.len(), false),
        };
        if !acc.oversized {
            let room = max_bytes.saturating_sub(acc.bytes.len());
            acc.oversized = content_len > room;
            if let Some(keep) = buf.get(..content_len.min(room)) {
                acc.bytes.extend_from_slice(keep);
            }
        }
        reader.consume(consume_len);
        if done {
            let mut line = acc.take();
            while line.bytes.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                line.bytes.pop();
            }
            return Ok(Some(line));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn commands_parse() {
        assert_eq!(parse_line(b"PING"), Ok(Some(Request::Ping)));
        assert_eq!(parse_line(b"  \r\n"), Ok(None));
        assert_eq!(
            parse_line(b"QUERY cc0.evil"),
            Ok(Some(Request::Query("cc0.evil".to_owned())))
        );
        assert_eq!(
            parse_line(b"INGEST {\"x\":1}"),
            Ok(Some(Request::Ingest("{\"x\":1}".to_owned())))
        );
        assert_eq!(parse_line(b"QUERY"), Err(ParseError::MissingArg("server")));
        assert_eq!(parse_line(&[0xff, 0xfe]), Err(ParseError::BadUtf8));
        assert!(matches!(
            parse_line(b"FROB x"),
            Err(ParseError::UnknownCommand(_))
        ));
    }

    #[test]
    fn bounded_reader_drains_oversized_lines() {
        let long = vec![b'a'; MAX_LINE_BYTES + 100];
        let mut input = long.clone();
        input.push(b'\n');
        input.extend_from_slice(b"PING\n");
        let mut r = BufReader::with_capacity(64, &input[..]);
        let first = read_bounded_line(&mut r, MAX_LINE_BYTES)
            .expect("read")
            .expect("line");
        assert!(first.oversized);
        assert!(first.bytes.len() <= MAX_LINE_BYTES);
        let second = read_bounded_line(&mut r, MAX_LINE_BYTES)
            .expect("read")
            .expect("line");
        assert!(!second.oversized);
        assert_eq!(second.bytes, b"PING");
        assert!(read_bounded_line(&mut r, MAX_LINE_BYTES)
            .expect("read")
            .is_none());
    }

    #[test]
    fn unterminated_fragment_is_returned_at_eof() {
        let mut r = BufReader::new(&b"QUERY partial"[..]);
        let line = read_bounded_line(&mut r, MAX_LINE_BYTES)
            .expect("read")
            .expect("fragment");
        assert_eq!(line.bytes, b"QUERY partial");
    }

    /// Yields one byte per `fill_buf`, failing every other call with
    /// `WouldBlock` — the shape of a socket read deadline firing
    /// mid-line.
    struct TimeoutEveryOtherRead<'a> {
        data: &'a [u8],
        pos: usize,
        tick: bool,
    }

    impl std::io::Read for TimeoutEveryOtherRead<'_> {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let buf = self.fill_buf()?;
            let n = buf.len().min(out.len());
            out[..n].copy_from_slice(&buf[..n]);
            self.consume(n);
            Ok(n)
        }
    }

    impl BufRead for TimeoutEveryOtherRead<'_> {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            self.tick = !self.tick;
            if self.tick {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "read deadline"));
            }
            let end = (self.pos + 1).min(self.data.len());
            Ok(&self.data[self.pos..end])
        }

        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    #[test]
    fn resumable_reader_preserves_partial_lines_across_timeouts() {
        let mut r = TimeoutEveryOtherRead {
            data: b"QUERY cc0.evil\nPING\n",
            pos: 0,
            tick: false,
        };
        let mut acc = LineAccumulator::new();
        let mut lines = Vec::new();
        let mut timeouts = 0u32;
        loop {
            match read_bounded_line_into(&mut r, MAX_LINE_BYTES, &mut acc) {
                Ok(Some(line)) => {
                    assert!(!line.oversized);
                    lines.push(line.bytes);
                }
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => timeouts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(lines, vec![b"QUERY cc0.evil".to_vec(), b"PING".to_vec()]);
        assert!(timeouts > 0, "the flaky reader never timed out?");
    }
}
